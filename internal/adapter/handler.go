package adapter

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"clipper/internal/gateway"
	"clipper/internal/rpc"
)

// maxInternedApps caps the handler's app-name intern table so a client
// spraying garbage names cannot grow it without bound; past the cap,
// lookups still hit interned entries and misses fall back to a plain
// allocation.
const maxInternedApps = 1024

// handler serves gateway operations over the framed wire. It interns app
// names so the steady-state predict path does not allocate for the
// (app → string) conversion: Go elides the []byte→string copy in a
// direct map index, and hits return the interned string.
type handler struct {
	b    *gateway.Bound
	full bool

	mu   sync.RWMutex
	apps map[string]string
}

// NewHandler returns an rpc.Handler dispatching frames to b. With full
// set the whole operation surface is served; without it only the
// data-plane ops (predict, feedback) are — the stream adapter's
// contract, which keeps its pipelined connection free of slow
// admin/scrape responses.
func NewHandler(b *gateway.Bound, full bool) rpc.Handler {
	h := &handler{b: b, full: full, apps: make(map[string]string)}
	return h.handle
}

func (h *handler) intern(name []byte) string {
	h.mu.RLock()
	s, ok := h.apps[string(name)] // no-alloc lookup
	n := len(h.apps)
	h.mu.RUnlock()
	if ok {
		return s
	}
	if n >= maxInternedApps {
		return string(name)
	}
	h.mu.Lock()
	if s, ok = h.apps[string(name)]; !ok {
		s = string(name)
		h.apps[s] = s
	}
	h.mu.Unlock()
	return s
}

// handle decodes one request and encodes the operation's result into
// scratch. Application-level failures travel as status bytes inside a
// normal response frame — never as rpc.MsgError, which is reserved for
// transport-level faults (unknown method, op not served here) — so typed
// gateway codes survive the wire.
func (h *handler) handle(method rpc.Method, payload, scratch []byte) ([]byte, error) {
	switch method {
	case MethodGWPredict:
		req, err := DecodePredictRequest(payload)
		if err != nil {
			h.b.Reject(gateway.OpPredict, gateway.CodeBadRequest)
			return AppendError(scratch, &gateway.Error{Code: gateway.CodeBadRequest, Msg: err.Error()}), nil
		}
		res, err := h.b.Predict(context.Background(), gateway.PredictRequest{
			App:     h.intern(req.App),
			Context: string(req.Context),
			Input:   req.Input,
		})
		if err != nil {
			return AppendError(scratch, err), nil
		}
		return AppendPredictResult(scratch, res), nil

	case MethodGWFeedback:
		req, err := DecodeFeedbackRequest(payload)
		if err != nil {
			h.b.Reject(gateway.OpFeedback, gateway.CodeBadRequest)
			return AppendError(scratch, &gateway.Error{Code: gateway.CodeBadRequest, Msg: err.Error()}), nil
		}
		ferr := h.b.Feedback(context.Background(), gateway.FeedbackRequest{
			App:     h.intern(req.App),
			Context: string(req.Context),
			Input:   req.Input,
			Label:   int(req.Label),
		})
		return AppendStatus(scratch, ferr), nil
	}

	if !h.full {
		return nil, fmt.Errorf("method 0x%x not served on this adapter", byte(method))
	}

	switch method {
	case MethodGWAppList:
		return appendJSON(scratch, h.b.AppList())
	case MethodGWModelList:
		return appendJSON(scratch, h.b.ModelList())
	case MethodGWHealth:
		h.b.Health()
		return AppendStatus(scratch, nil), nil
	case MethodGWMetrics:
		var buf bytes.Buffer
		if err := h.b.WriteMetrics(&buf); err != nil {
			return AppendError(scratch, err), nil
		}
		scratch = append(scratch, byte(gateway.CodeOK))
		return append(scratch, buf.Bytes()...), nil
	case MethodGWRegisterApp:
		var req gateway.RegisterAppRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			h.b.Reject(gateway.OpRegisterApp, gateway.CodeBadRequest)
			return AppendError(scratch, &gateway.Error{Code: gateway.CodeBadRequest, Msg: "bad JSON: " + err.Error()}), nil
		}
		return AppendStatus(scratch, h.b.RegisterApp(req)), nil
	default:
		return nil, fmt.Errorf("unknown method 0x%x", byte(method))
	}
}

// appendJSON encodes v exactly as the HTTP adapter does (json.Encoder
// semantics, trailing newline included) behind an OK status byte, so the
// JSON bodies are byte-identical across protocols.
func appendJSON(scratch []byte, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return AppendError(scratch, &gateway.Error{Code: gateway.CodeInternal, Msg: err.Error()}), nil
	}
	scratch = append(scratch, byte(gateway.CodeOK))
	scratch = append(scratch, data...)
	return append(scratch, '\n'), nil
}
