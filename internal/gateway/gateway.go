// Package gateway is Clipper's transport-agnostic request core: every
// application-facing operation — predict, feedback, app registration,
// introspection, admin mutations, the metrics scrape — is a typed method
// here, implemented exactly once. Protocol adapters (internal/adapter/*)
// are thin shells that decode their wire format, call a gateway
// operation, and encode the result; validation, QoS/shed error mapping,
// degraded-flag plumbing, and per-adapter request/error/latency
// instrumentation never leak into an adapter.
//
// An adapter obtains a Bound handle via (*Gateway).Bind("http") and calls
// operations on it; the handle stamps every call into the node's
// Prometheus registry as
//
//	clipper_gateway_requests_total{adapter,op}
//	clipper_gateway_errors_total{adapter,op,code}
//	clipper_gateway_latency_seconds{adapter,op}   (summary)
//
// so one scrape compares the same operation across protocols.
package gateway

import (
	"sort"
	"sync"
	"time"

	"clipper/internal/core"
	"clipper/internal/metrics"
)

// Op identifies one gateway operation, the `op` label on the gateway
// metric families.
type Op uint8

// Gateway operations.
const (
	OpPredict Op = iota
	OpPredictBatch
	OpFeedback
	OpRegisterApp
	OpAppList
	OpModelList
	OpHealth
	OpMetrics
	OpDeploy
	OpReplicas
	OpApplications
	OpSetHealth
	numOps
)

var opNames = [numOps]string{
	"predict", "predict_batch", "feedback", "register_app",
	"app_list", "model_list", "health", "metrics",
	"deploy", "replicas", "applications", "set_health",
}

// String returns the operation's metric-label name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// opStats is one (adapter, op) cell: requests, errors by code, latency.
// Counters are atomic; the histogram locks internally. Read only at
// scrape time.
type opStats struct {
	reqs metrics.Counter
	errs [numCodes]metrics.Counter
	lat  *metrics.Histogram
}

// instr is one adapter's instrumentation block.
type instr struct {
	ops [numOps]opStats
}

// Gateway is the transport-agnostic core over one Clipper node.
type Gateway struct {
	cl *core.Clipper

	mu       sync.RWMutex
	adapters map[string]*instr
	order    []string // sorted adapter labels, for deterministic scrapes
}

// New returns a gateway over cl and registers the gateway metric
// families. A second Gateway over the same Clipper (rare, but legal)
// keeps the first gateway's families: the names are taken.
func New(cl *core.Clipper) *Gateway {
	g := &Gateway{cl: cl, adapters: make(map[string]*instr)}
	reg := cl.Metrics()
	_ = reg.Register("clipper_gateway_requests_total",
		"Gateway operations started, by protocol adapter and operation.",
		metrics.KindCounter, func(dst []metrics.Series) []metrics.Series {
			return g.eachOp(dst, func(dst []metrics.Series, adapter string, op Op, st *opStats) []metrics.Series {
				return append(dst, metrics.Series{
					Labels: []metrics.Label{{Name: "adapter", Value: adapter}, {Name: "op", Value: op.String()}},
					Value:  float64(st.reqs.Value()),
				})
			})
		})
	_ = reg.Register("clipper_gateway_errors_total",
		"Gateway operations failed, by adapter, operation, and error code.",
		metrics.KindCounter, func(dst []metrics.Series) []metrics.Series {
			return g.eachOp(dst, func(dst []metrics.Series, adapter string, op Op, st *opStats) []metrics.Series {
				for c := Code(0); c < numCodes; c++ {
					v := st.errs[c].Value()
					if v == 0 {
						continue // all-zero error series would drown the scrape
					}
					dst = append(dst, metrics.Series{
						Labels: []metrics.Label{
							{Name: "adapter", Value: adapter},
							{Name: "op", Value: op.String()},
							{Name: "code", Value: c.String()},
						},
						Value: float64(v),
					})
				}
				return dst
			})
		})
	_ = reg.Register("clipper_gateway_latency_seconds",
		"Gateway operation latency by adapter and operation.",
		metrics.KindSummary, func(dst []metrics.Series) []metrics.Series {
			return g.eachOp(dst, func(dst []metrics.Series, adapter string, op Op, st *opStats) []metrics.Series {
				return metrics.AppendSummary(dst, st.lat,
					metrics.Label{Name: "adapter", Value: adapter},
					metrics.Label{Name: "op", Value: op.String()})
			})
		})
	return g
}

// Clipper returns the underlying node.
func (g *Gateway) Clipper() *core.Clipper { return g.cl }

// eachOp walks every bound adapter's touched (op) cells in deterministic
// order. Untouched cells are skipped so a freshly bound adapter does not
// flood the scrape with zero series.
func (g *Gateway) eachOp(dst []metrics.Series, fn func([]metrics.Series, string, Op, *opStats) []metrics.Series) []metrics.Series {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, name := range g.order {
		in := g.adapters[name]
		for op := Op(0); op < numOps; op++ {
			st := &in.ops[op]
			if st.reqs.Value() == 0 {
				continue
			}
			dst = fn(dst, name, op, st)
		}
	}
	return dst
}

// Bind returns the adapter's operation handle, creating its
// instrumentation block on first use. Binding the same label twice
// returns the same block, so a restarted adapter keeps its counters.
func (g *Gateway) Bind(adapter string) *Bound {
	g.mu.Lock()
	in, ok := g.adapters[adapter]
	if !ok {
		in = &instr{}
		for op := range in.ops {
			in.ops[op].lat = metrics.NewHistogram()
		}
		g.adapters[adapter] = in
		g.order = append(g.order, adapter)
		sort.Strings(g.order)
	}
	g.mu.Unlock()
	return &Bound{g: g, in: in}
}

// Bound is a gateway handle bound to one protocol adapter's
// instrumentation. All operations live here.
type Bound struct {
	g  *Gateway
	in *instr
}

// Gateway returns the handle's gateway.
func (b *Bound) Gateway() *Gateway { return b.g }

// begin stamps an operation start; the returned function completes the
// observation. Usage: defer b.begin(OpPredict)(&err).
func (b *Bound) begin(op Op) func(*error) {
	start := time.Now()
	st := &b.in.ops[op]
	st.reqs.Inc()
	return func(errp *error) {
		st.lat.ObserveDuration(time.Since(start))
		if errp != nil && *errp != nil {
			st.errs[CodeOf(*errp)].Inc()
		}
	}
}

// Reject records a request the adapter refused before reaching an
// operation — a transport-level parse or method error — so per-adapter
// request/error counters stay complete without the adapter keeping its
// own books.
func (b *Bound) Reject(op Op, code Code) {
	st := &b.in.ops[op]
	st.reqs.Inc()
	st.errs[code].Inc()
}
