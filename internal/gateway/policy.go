package gateway

import (
	"fmt"

	"clipper/internal/selection"
)

// ParsePolicy maps a policy name to a selection.Policy: "" or "exp4",
// "exp3", "ucb1", "thompson", "epsilon-greedy", or "static:<index>".
func ParsePolicy(name string) (selection.Policy, error) {
	switch {
	case name == "" || name == "exp4":
		return selection.NewExp4(0), nil
	case name == "exp3":
		return selection.NewExp3(0), nil
	case name == "ucb1":
		return selection.NewUCB1(), nil
	case name == "thompson":
		return selection.NewThompson(), nil
	case name == "epsilon-greedy":
		return selection.NewEpsilonGreedy(0, 0), nil
	case len(name) > 7 && name[:7] == "static:":
		var idx int
		if _, err := fmt.Sscanf(name[7:], "%d", &idx); err != nil {
			return nil, fmt.Errorf("bad static policy index %q", name[7:])
		}
		return selection.NewStatic(idx), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
