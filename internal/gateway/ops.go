package gateway

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"clipper/internal/batching"
	"clipper/internal/container"
	"clipper/internal/core"
)

// The wire-facing request/response types live here, JSON tags included,
// so httpjson serves them directly and the framed adapters reuse the
// same shapes for their JSON-bodied operations — one schema, three
// transports.

// PredictRequest asks for one prediction.
type PredictRequest struct {
	// App names the registered application.
	App string `json:"app"`
	// Context optionally names the selection context (user/session).
	Context string `json:"context,omitempty"`
	// Input is the dense feature vector.
	Input []float64 `json:"input"`
}

// PredictResult is one prediction outcome, transport-neutral.
type PredictResult struct {
	Label       int
	Confidence  float64
	UsedDefault bool
	Missing     int
	Degraded    bool
	Latency     time.Duration
}

// FeedbackRequest reports ground truth for an earlier prediction.
type FeedbackRequest struct {
	App     string    `json:"app"`
	Context string    `json:"context,omitempty"`
	Input   []float64 `json:"input"`
	Label   int       `json:"label"`
}

// BatchPredictRequest asks for many predictions in one call.
type BatchPredictRequest struct {
	App     string      `json:"app"`
	Context string      `json:"context,omitempty"`
	Inputs  [][]float64 `json:"inputs"`
}

// MaxBatch bounds BatchPredictRequest.Inputs.
const MaxBatch = 4096

// RegisterAppRequest declares an application over deployed models.
type RegisterAppRequest struct {
	// Name is the application name.
	Name string `json:"name"`
	// Models lists deployed model names, in policy index order.
	Models []string `json:"models"`
	// Policy selects the selection policy: "exp3", "exp4", "ucb1",
	// "thompson", "epsilon-greedy" or "static:<index>". Empty selects
	// exp4.
	Policy string `json:"policy,omitempty"`
	// SLOMillis is the straggler deadline; 0 waits for all models.
	SLOMillis int `json:"slo_ms,omitempty"`
	// ConfidenceThreshold enables robust defaults when positive.
	ConfidenceThreshold float64 `json:"confidence_threshold,omitempty"`
	// DefaultLabel is the robust default action.
	DefaultLabel int `json:"default_label,omitempty"`
	// Weight is the app's fair-batching weight across tenants sharing a
	// replica queue; setting it (or a shed policy) opts the app into
	// multi-tenant QoS. 0 selects 1.
	Weight int `json:"weight,omitempty"`
	// ShedPolicy selects SLO admission control: "none" (default),
	// "reject", or "degrade".
	ShedPolicy string `json:"shed_policy,omitempty"`
}

// AppInfo is one registered application in an AppList.
type AppInfo struct {
	Name   string   `json:"name"`
	Models []string `json:"models"`
}

// DeployRequest dials and deploys a remote model container.
type DeployRequest struct {
	// Addr is the model container's RPC address ("host:port").
	Addr string `json:"addr"`
	// SLOMillis is the batching latency objective; 0 selects 20ms.
	SLOMillis int `json:"slo_ms,omitempty"`
	// BatchTimeoutMicros optionally enables delayed batching.
	BatchTimeoutMicros int `json:"batch_timeout_us,omitempty"`
	// Conns sets the replica's RPC connection pool size; 0 or 1 selects
	// the single-connection client (see docs/ARCHITECTURE.md). With
	// Adaptive it is the pool's upper bound.
	Conns int `json:"conns,omitempty"`
	// InFlight pins the dispatch pipeline window; 0 selects the default
	// (ignored when Adaptive).
	InFlight int `json:"in_flight,omitempty"`
	// Adaptive sizes the pipeline window and the pool's routing target at
	// runtime instead of pinning them (see docs/ARCHITECTURE.md).
	Adaptive bool `json:"adaptive,omitempty"`
	// MinInFlight / MaxInFlight bound the adaptive window; 0 selects the
	// controller defaults (1 and 64).
	MinInFlight int `json:"min_in_flight,omitempty"`
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MinConns bounds the adaptive pool target from below; 0 selects 1.
	// The upper bound is Conns.
	MinConns int `json:"min_conns,omitempty"`
}

// DeployResponse reports the deployed replica.
type DeployResponse struct {
	Model     string `json:"model"`
	Version   int    `json:"version"`
	ReplicaID string `json:"replica_id"`
}

// Predict runs one prediction through the app's selection policy.
func (b *Bound) Predict(ctx context.Context, req PredictRequest) (res PredictResult, err error) {
	defer b.begin(OpPredict)(&err)
	if len(req.Input) == 0 {
		return res, fail(CodeBadRequest, "empty input")
	}
	app, ok := b.g.cl.App(req.App)
	if !ok {
		return res, fail(CodeNotFound, fmt.Sprintf("unknown app %q", req.App))
	}
	resp, perr := app.PredictContext(ctx, req.Context, req.Input)
	if perr != nil {
		return res, wrap(perr)
	}
	return fromResponse(resp), nil
}

// PredictBatch runs many predictions; it fails atomically on the first
// invalid input or serving error, matching the HTTP endpoint's
// historical behavior.
func (b *Bound) PredictBatch(ctx context.Context, req BatchPredictRequest) (res []PredictResult, err error) {
	defer b.begin(OpPredictBatch)(&err)
	if len(req.Inputs) == 0 {
		return nil, fail(CodeBadRequest, "empty inputs")
	}
	if len(req.Inputs) > MaxBatch {
		return nil, fail(CodeBadRequest, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Inputs), MaxBatch))
	}
	app, ok := b.g.cl.App(req.App)
	if !ok {
		return nil, fail(CodeNotFound, fmt.Sprintf("unknown app %q", req.App))
	}
	res = make([]PredictResult, len(req.Inputs))
	for i, x := range req.Inputs {
		if len(x) == 0 {
			return nil, fail(CodeBadRequest, fmt.Sprintf("input %d is empty", i))
		}
		resp, perr := app.PredictContext(ctx, req.Context, x)
		if perr != nil {
			return nil, wrap(perr)
		}
		res[i] = fromResponse(resp)
	}
	return res, nil
}

func fromResponse(r core.Response) PredictResult {
	return PredictResult{
		Label:       r.Label,
		Confidence:  r.Confidence,
		UsedDefault: r.UsedDefault,
		Missing:     r.Missing,
		Degraded:    r.Degraded,
		Latency:     r.Latency,
	}
}

// Feedback reports ground truth to the app's selection policy.
func (b *Bound) Feedback(ctx context.Context, req FeedbackRequest) (err error) {
	defer b.begin(OpFeedback)(&err)
	if len(req.Input) == 0 {
		return fail(CodeBadRequest, "empty input")
	}
	app, ok := b.g.cl.App(req.App)
	if !ok {
		return fail(CodeNotFound, fmt.Sprintf("unknown app %q", req.App))
	}
	return wrap(app.FeedbackContext(ctx, req.Context, req.Input, req.Label))
}

// RegisterApp registers an application at runtime.
func (b *Bound) RegisterApp(req RegisterAppRequest) (err error) {
	defer b.begin(OpRegisterApp)(&err)
	policy, perr := ParsePolicy(req.Policy)
	if perr != nil {
		return fail(CodeBadRequest, perr.Error())
	}
	shed, serr := core.ParseShedPolicy(req.ShedPolicy)
	if serr != nil {
		return fail(CodeBadRequest, serr.Error())
	}
	_, rerr := b.g.cl.RegisterApp(core.AppConfig{
		Name:                req.Name,
		Models:              req.Models,
		Policy:              policy,
		SLO:                 time.Duration(req.SLOMillis) * time.Millisecond,
		ConfidenceThreshold: req.ConfidenceThreshold,
		DefaultLabel:        req.DefaultLabel,
		Weight:              req.Weight,
		Shed:                shed,
	})
	if rerr != nil {
		return fail(CodeConflict, rerr.Error())
	}
	return nil
}

// AppList returns the registered applications, name-sorted.
func (b *Bound) AppList() []AppInfo {
	defer b.begin(OpAppList)(nil)
	var out []AppInfo
	for _, name := range b.g.cl.AppNames() {
		app, ok := b.g.cl.App(name)
		if !ok {
			continue
		}
		out = append(out, AppInfo{Name: name, Models: app.ModelNames()})
	}
	return out
}

// ModelList returns the deployed model names, sorted.
func (b *Bound) ModelList() []string {
	defer b.begin(OpModelList)(nil)
	models := b.g.cl.Models()
	sort.Strings(models)
	return models
}

// Health reports node liveness (always true once serving).
func (b *Bound) Health() bool {
	defer b.begin(OpHealth)(nil)
	return true
}

// Deploy dials a remote model container and deploys it. A dial failure
// maps to CodeBadGateway (the container is unreachable), a deploy
// failure to CodeConflict (e.g. a version mismatch) — the two cases
// operators must tell apart.
func (b *Bound) Deploy(req DeployRequest) (res DeployResponse, err error) {
	defer b.begin(OpDeploy)(&err)
	if req.Addr == "" {
		return res, fail(CodeBadRequest, "addr required")
	}
	remote, derr := container.DialConns(req.Addr, 5*time.Second, req.Conns)
	if derr != nil {
		return res, fail(CodeBadGateway, "dialing container: "+derr.Error())
	}
	slo := time.Duration(req.SLOMillis) * time.Millisecond
	if slo <= 0 {
		slo = 20 * time.Millisecond
	}
	qcfg := batching.QueueConfig{
		Controller:   batching.NewAIMD(batching.AIMDConfig{SLO: slo}),
		BatchTimeout: time.Duration(req.BatchTimeoutMicros) * time.Microsecond,
		InFlight:     req.InFlight,
	}
	if req.Adaptive {
		qcfg.Adaptive = batching.NewAdaptive(batching.AdaptiveConfig{
			MinInFlight: req.MinInFlight,
			MaxInFlight: req.MaxInFlight,
			MinConns:    req.MinConns,
		})
	}
	rep, rerr := b.g.cl.Deploy(remote, func() { remote.Close() }, qcfg)
	if rerr != nil {
		remote.Close()
		return res, fail(CodeConflict, rerr.Error())
	}
	info := remote.Info()
	return DeployResponse{Model: info.Name, Version: info.Version, ReplicaID: rep.ID}, nil
}

// Replicas returns one model's replica statuses.
func (b *Bound) Replicas(model string) map[string]core.ReplicaStatus {
	defer b.begin(OpReplicas)(nil)
	return b.g.cl.ReplicaStatuses(model)
}

// AllReplicas returns every model's replica statuses.
func (b *Bound) AllReplicas() map[string]map[string]core.ReplicaStatus {
	defer b.begin(OpReplicas)(nil)
	out := map[string]map[string]core.ReplicaStatus{}
	for _, m := range b.g.cl.Models() {
		out[m] = b.g.cl.ReplicaStatuses(m)
	}
	return out
}

// Applications returns every application's QoS/serving snapshot.
func (b *Bound) Applications() map[string]core.AppStatus {
	defer b.begin(OpApplications)(nil)
	return b.g.cl.AppStatuses()
}

// SetHealth marks a replica healthy or unhealthy.
func (b *Bound) SetHealth(replica string, healthy bool) (err error) {
	defer b.begin(OpSetHealth)(&err)
	var ok bool
	if healthy {
		ok = b.g.cl.MarkHealthy(replica)
	} else {
		ok = b.g.cl.MarkUnhealthy(replica)
	}
	if !ok {
		return fail(CodeNotFound, "unknown replica "+replica)
	}
	return nil
}

// WriteMetrics renders the node's Prometheus text exposition to w.
func (b *Bound) WriteMetrics(w io.Writer) (err error) {
	defer b.begin(OpMetrics)(&err)
	return wrap(b.g.cl.Metrics().WritePrometheus(w))
}

// WriteMetricsText renders the legacy human-readable telemetry dump.
func (b *Bound) WriteMetricsText(w io.Writer) {
	defer b.begin(OpMetrics)(nil)
	cl := b.g.cl
	for _, name := range cl.AppNames() {
		app, ok := cl.App(name)
		if !ok {
			continue
		}
		snap := app.PredLatency.Snapshot()
		fmt.Fprintf(w, "app %s predictions=%d throughput=%.1fqps %s defaults=%d feedbacks=%d\n",
			name, snap.Count, app.Throughput.RateSinceLastMark(), snap,
			app.Defaults.Value(), app.Feedbacks.Value())
	}
	if c := cl.Cache(); c != nil {
		h, m := c.Stats()
		fmt.Fprintf(w, "cache entries=%d/%d shards=%d hits=%d misses=%d hit_rate=%.3f\n",
			c.Len(), c.Capacity(), c.Shards(), h, m, c.HitRate())
	}
	models := cl.Models()
	sort.Strings(models)
	for _, model := range models {
		for i, q := range cl.ReplicaQueues(model) {
			fmt.Fprintf(w, "queue %s/%d ctrl=%s max_batch=%d served=%d mean_batch=%.1f batch_lat_p99=%.3fms\n",
				model, i, q.Controller().Name(), q.Controller().MaxBatch(),
				q.Throughput.Count(), q.BatchSizes.Mean(), q.BatchLatency.P99()*1e3)
		}
	}
}
