package gateway

import (
	"errors"
	"net/http"

	"clipper/internal/core"
)

// Code classifies an operation failure independent of transport. Each
// adapter maps codes onto its wire: httpjson to HTTP status codes, the
// framed adapters to a status byte.
type Code uint8

// Error codes. The zero value is success and never appears on an Error.
const (
	CodeOK Code = iota
	CodeBadRequest
	CodeNotFound
	CodeConflict
	// CodeShed is the QoS admission gate refusing a query predicted to
	// bust its SLO (core.ErrSLOShed) — the caller should back off, the
	// server did not malfunction.
	CodeShed
	CodeBadGateway
	CodeInternal
	numCodes
)

var codeNames = [numCodes]string{
	"ok", "bad_request", "not_found", "conflict", "shed", "bad_gateway", "internal",
}

// String returns the code's metric-label name.
func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return "unknown"
}

// HTTPStatus returns the code's HTTP status mapping.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeOK:
		return http.StatusOK
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeShed:
		return http.StatusServiceUnavailable
	case CodeBadGateway:
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// Error is a typed operation failure. Msg is the transport-visible error
// text; adapters must surface it verbatim so the same bad input reads
// the same over every protocol.
type Error struct {
	Code Code
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return e.Msg }

// fail wraps msg under code.
func fail(code Code, msg string) error { return &Error{Code: code, Msg: msg} }

// wrap classifies err from a core call: SLO sheds keep their semantic
// code, anything else is an internal failure. Already-typed errors pass
// through.
func wrap(err error) error {
	if err == nil {
		return nil
	}
	var ge *Error
	if errors.As(err, &ge) {
		return err
	}
	if errors.Is(err, core.ErrSLOShed) {
		return &Error{Code: CodeShed, Msg: err.Error()}
	}
	return &Error{Code: CodeInternal, Msg: err.Error()}
}

// CodeOf extracts an error's code (CodeInternal for untyped errors,
// CodeOK for nil).
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	var ge *Error
	if errors.As(err, &ge) {
		return ge.Code
	}
	if errors.Is(err, core.ErrSLOShed) {
		return CodeShed
	}
	return CodeInternal
}
