package baseline

import (
	"context"
	"sync"
	"testing"
	"time"

	"clipper/internal/container"
)

type echoModel struct {
	mu      sync.Mutex
	batches []int
}

func (e *echoModel) Info() container.Info {
	return container.Info{Name: "echo", Version: 1}
}

func (e *echoModel) PredictBatch(xs [][]float64) ([]container.Prediction, error) {
	e.mu.Lock()
	e.batches = append(e.batches, len(xs))
	e.mu.Unlock()
	out := make([]container.Prediction, len(xs))
	for i, x := range xs {
		out[i] = container.Prediction{Label: int(x[0])}
	}
	return out, nil
}

func (e *echoModel) Batches() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.batches...)
}

func TestTFServingPredict(t *testing.T) {
	m := &echoModel{}
	s := New(m, Config{BatchSize: 8, BatchTimeout: time.Millisecond})
	defer s.Close()
	p, err := s.Predict(context.Background(), []float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != 42 {
		t.Fatalf("Label = %d", p.Label)
	}
	if s.Throughput.Count() != 1 || s.Latency.Count() != 1 {
		t.Fatal("telemetry not recorded")
	}
}

func TestTFServingStaticBatchCap(t *testing.T) {
	m := &echoModel{}
	s := New(m, Config{BatchSize: 4, BatchTimeout: 5 * time.Millisecond})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Predict(context.Background(), []float64{float64(i)})
		}(i)
	}
	wg.Wait()
	for _, b := range m.Batches() {
		if b > 4 {
			t.Fatalf("batch %d exceeds static size 4", b)
		}
	}
}

func TestTFServingTimeoutDispatch(t *testing.T) {
	// A single query must not wait forever for the batch to fill: the
	// timeout dispatches it.
	m := &echoModel{}
	s := New(m, Config{BatchSize: 512, BatchTimeout: 10 * time.Millisecond})
	defer s.Close()
	start := time.Now()
	if _, err := s.Predict(context.Background(), []float64{1}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 200*time.Millisecond {
		t.Fatalf("timeout dispatch took %v", elapsed)
	}
}

func TestTFServingDefaults(t *testing.T) {
	m := &echoModel{}
	s := New(m, Config{BatchSize: 0})
	defer s.Close()
	if got := s.Queue().Controller().MaxBatch(); got != 1 {
		t.Fatalf("default batch = %d", got)
	}
}
