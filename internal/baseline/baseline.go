// Package baseline implements a TensorFlow-Serving-like prediction server
// (paper §6): a single model, tightly coupled in-process (no container
// RPC, no cross-process serialization), with a statically sized batch queue
// dispatched by a pure timeout mechanism and no latency-SLO awareness.
//
// The paper compares Clipper to TensorFlow Serving on three object
// recognition models and finds near-parity; this baseline reproduces the
// architectural contrasts the comparison measures: static vs adaptive
// batching, and in-process model evaluation vs decoupled containers. See
// DESIGN.md §4.
package baseline

import (
	"context"
	"time"

	"clipper/internal/batching"
	"clipper/internal/container"
	"clipper/internal/metrics"
)

// Config parameterizes a TFServing instance.
type Config struct {
	// BatchSize is the hand-tuned static batch size (the paper uses 512
	// for MNIST, 128 for CIFAR, 16 for ImageNet). Required.
	BatchSize int
	// BatchTimeout is the starvation-avoidance timeout: a non-full batch
	// dispatches after this delay. Zero selects 1ms.
	BatchTimeout time.Duration
	// QueueDepth bounds queued requests; 0 selects 8192.
	QueueDepth int
}

// TFServing is the baseline serving system. It reuses the batching queue
// machinery with a Fixed controller — precisely TensorFlow Serving's
// static-batch, timeout-dispatched design — but evaluates the model
// in-process with no RPC boundary.
type TFServing struct {
	queue *batching.Queue
	model container.Predictor

	// Latency is the end-to-end request latency histogram.
	Latency *metrics.Histogram
	// Throughput counts completed predictions.
	Throughput *metrics.Meter
}

// New returns a baseline server over the in-process model.
func New(model container.Predictor, cfg Config) *TFServing {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = time.Millisecond
	}
	return &TFServing{
		queue: batching.NewQueue(model, batching.QueueConfig{
			Controller:   batching.NewFixed(cfg.BatchSize),
			BatchTimeout: cfg.BatchTimeout,
			Depth:        cfg.QueueDepth,
			InFlight:     1, // TF Serving executes one batch at a time
		}),
		model:      model,
		Latency:    metrics.NewHistogram(),
		Throughput: metrics.NewMeter(),
	}
}

// Predict renders one prediction, blocking until its batch completes.
func (s *TFServing) Predict(ctx context.Context, x []float64) (container.Prediction, error) {
	start := time.Now()
	p, err := s.queue.Submit(ctx, x)
	if err != nil {
		return container.Prediction{}, err
	}
	s.Latency.ObserveDuration(time.Since(start))
	s.Throughput.Mark(1)
	return p, nil
}

// Queue exposes the underlying batch queue's telemetry.
func (s *TFServing) Queue() *batching.Queue { return s.queue }

// Close shuts the server down.
func (s *TFServing) Close() { s.queue.Close() }
