package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a multiplexing RPC client: many goroutines may issue Call
// concurrently over a single connection; responses are correlated by
// request id.
type Client struct {
	conn io.ReadWriteCloser

	writeMu sync.Mutex

	// Connection telemetry (see Stats). The contended-write counters are
	// only touched when a Call actually queues behind another in-progress
	// frame write, so the uncontended hot path pays one TryLock and two
	// atomic adds.
	bytesInFlight atomic.Int64 // payload bytes currently being written
	writes        atomic.Int64 // request frames written
	writeQueued   atomic.Int64 // writes that waited behind another write
	writeWaitNS   atomic.Int64 // total ns spent waiting behind writes

	done     chan struct{} // closed when the client dies (read failure or Close)
	doneOnce sync.Once

	mu      sync.Mutex
	pending map[uint64]chan *Frame
	nextID  uint64
	closed  bool
	readErr error
}

// ConnStats is a point-in-time snapshot of one connection's write-side
// telemetry. The counters are cumulative over the connection's lifetime;
// consumers (the adaptive controller, the admin API) difference successive
// snapshots to derive rates.
type ConnStats struct {
	// Alive reports whether the connection is still serving calls.
	Alive bool
	// BytesInFlight is the payload bytes being written at snapshot time.
	BytesInFlight int64
	// Writes is the number of request frames written.
	Writes int64
	// WriteQueued is the number of writes that queued behind another
	// in-progress frame write — the head-of-line signal that a link is
	// transfer-bound.
	WriteQueued int64
	// WriteWait is the total time writes spent queued behind other writes.
	WriteWait time.Duration
}

// Stats snapshots the connection's write-side telemetry.
func (c *Client) Stats() ConnStats {
	return ConnStats{
		Alive:         c.alive(),
		BytesInFlight: c.bytesInFlight.Load(),
		Writes:        c.writes.Load(),
		WriteQueued:   c.writeQueued.Load(),
		WriteWait:     time.Duration(c.writeWaitNS.Load()),
	}
}

// ErrClientClosed is returned by calls issued after Close (or after the
// connection failed).
var ErrClientClosed = errors.New("rpc: client closed")

// callChPool recycles the per-call correlation channels, the last
// per-call allocation on the request hot path. A channel is safe to pool
// once its call has fully completed: on the normal and error-response
// paths the caller has drained the one buffered frame, and on the
// abandoned path abandon() guarantees the channel is empty (the pending
// entry is gone and any raced response was drained under mu). Channels a
// dying connection closes in failAll are never pooled — a closed channel
// is dead.
var callChPool = sync.Pool{
	New: func() any { return make(chan *Frame, 1) },
}

// Payload is a leased response payload returned by Call. Data aliases a
// pooled frame body; the caller owns the lease and must call Release
// exactly once when it is done with Data — for the prediction path that
// release point is Remote.PredictBatchContext, immediately after
// DecodePredictions copies the values out. Data must not be retained or
// used after Release. The zero Payload is valid and Release on it is a
// no-op, so error returns need no special casing.
type Payload struct {
	// Data is the response payload. Valid until Release.
	Data []byte

	frame *Frame
}

// Release returns the payload's backing frame body to the frame pools.
func (p Payload) Release() { p.frame.Release() }

// Dial connects to a container server at addr (TCP).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetNoDelay(true) // latency matters more than packet count
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (or any ReadWriteCloser, e.g. a
// bandwidth-limited simulated link) in a client and starts its read loop.
func NewClient(conn io.ReadWriteCloser) *Client {
	c := &Client{
		conn:    conn,
		done:    make(chan struct{}),
		pending: make(map[uint64]chan *Frame),
	}
	go c.readLoop()
	return c
}

// Done returns a channel closed when the client dies — its connection
// failed or Close was called. Pool watches it to trigger redials.
func (c *Client) Done() <-chan struct{} { return c.done }

// Alive reports whether the client has not yet died — a single channel
// poll, cheap enough for per-dispatch checks (unlike Stats, which reads
// the write-side counters too).
func (c *Client) Alive() bool { return c.alive() }

// alive reports whether the client has not yet died. Pool uses it to route
// new calls away from a dead connection its monitor hasn't replaced yet.
func (c *Client) alive() bool {
	select {
	case <-c.done:
		return false
	default:
		return true
	}
}

// Err returns the error that killed the client, or nil while it is live.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

func (c *Client) readLoop() {
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
			// Deliver while holding mu (the channel is buffered, so this
			// never blocks). Publishing under the lock is what makes the
			// cancelled-call drain sound: a caller that finds its pending
			// entry already gone knows the response — if one arrived — is
			// already sitting in its channel, so its non-blocking drain
			// cannot miss a frame and leak the lease.
			ch <- f
		}
		c.mu.Unlock()
		if !ok {
			// Response to an abandoned call (or stray id): nobody else
			// will see this frame, so the read loop ends its lease.
			f.Release()
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	c.closed = true
	if c.readErr == nil {
		c.readErr = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *Frame)
	c.mu.Unlock()
	// Release the connection's descriptor: the read loop exiting means the
	// connection is unusable whatever the cause (EOF, reset, protocol
	// error), and nothing else closes it — a pool replaces the dead client
	// wholesale, which would otherwise leak one fd per connection death.
	c.conn.Close()
	c.doneOnce.Do(func() { close(c.done) })
	for _, ch := range pending {
		close(ch)
	}
}

// Call sends a request and blocks for its response or ctx cancellation.
// The returned Payload is leased: the caller must Release it exactly once
// when done with its Data (error returns carry a zero Payload, safe to
// ignore). A call abandoned by ctx cancellation releases its late-arriving
// response internally — either the caller's drain or the read loop gets
// it, never both.
func (c *Client) Call(ctx context.Context, method Method, payload []byte) (Payload, error) {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return Payload{}, err
	}
	c.nextID++
	id := c.nextID
	ch := callChPool.Get().(chan *Frame)
	c.pending[id] = ch
	c.mu.Unlock()

	req := &Frame{ID: id, Type: MsgRequest, Method: method, Payload: payload}
	// TryLock first so the telemetry is free when the write path is
	// uncontended; only a call that actually queues behind another frame
	// write pays for the clock reads.
	if !c.writeMu.TryLock() {
		waitStart := time.Now()
		c.writeMu.Lock()
		c.writeWaitNS.Add(int64(time.Since(waitStart)))
		c.writeQueued.Add(1)
	}
	c.bytesInFlight.Add(int64(len(payload)))
	err := WriteFrame(c.conn, req)
	c.bytesInFlight.Add(-int64(len(payload)))
	c.writes.Add(1)
	c.writeMu.Unlock()
	if err != nil {
		// abandon (not a bare delete) so a response that raced the write
		// failure is found and released, leaving the channel empty.
		if c.abandon(id, ch) {
			callChPool.Put(ch)
		}
		return Payload{}, err
	}

	select {
	case f, ok := <-ch:
		if !ok {
			// failAll closed this channel; a closed channel is dead and
			// never pooled.
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = ErrClientClosed
			}
			return Payload{}, err
		}
		callChPool.Put(ch)
		if f.Type == MsgError {
			msg := string(f.Payload)
			f.Release()
			return Payload{}, &RemoteError{Message: msg}
		}
		return Payload{Data: f.Payload, frame: f}, nil
	case <-ctx.Done():
		if c.abandon(id, ch) {
			callChPool.Put(ch)
		}
		return Payload{}, ctx.Err()
	}
}

// abandon removes a cancelled call's correlation entry. If the response
// raced in first, the read loop has already buffered it in ch (under mu,
// before removing the entry), so a non-blocking drain reliably finds the
// frame and releases its lease — late responses never corrupt the body
// pool or leak.
//
// It reports whether ch is safe to return to callChPool: false when the
// channel may still be (or already is) in failAll's hands — failAll
// snapshots the pending map under mu and closes every snapshotted
// channel afterwards, so a channel abandoned on a dying client must be
// leaked to the GC rather than pooled, or the pool would hand out a
// channel that gets closed (again) under it.
func (c *Client) abandon(id uint64, ch chan *Frame) bool {
	c.mu.Lock()
	if _, ok := c.pending[id]; ok {
		// Entry still ours: no response was delivered (the read loop
		// delivers under mu before removing the entry) and failAll has not
		// snapshotted it (it would have taken the entry). Empty and
		// unshared → poolable.
		delete(c.pending, id)
		c.mu.Unlock()
		return true
	}
	dying := c.closed
	c.mu.Unlock()
	select {
	case f, ok := <-ch:
		if !ok {
			return false // failAll closed it
		}
		// The read loop delivered before we abandoned — it consumed the
		// entry, so failAll never saw this channel. Drained → poolable.
		f.Release()
		return true
	default:
	}
	// Empty with the entry gone: only a dying client's failAll snapshot
	// explains that, and it will close ch shortly.
	return !dying
}

// Ping round-trips a heartbeat frame.
func (c *Client) Ping(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	ch := callChPool.Get().(chan *Frame)
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := WriteFrame(c.conn, &Frame{ID: id, Type: MsgPing})
	c.writeMu.Unlock()
	if err != nil {
		// Release the correlation entry, as Call does on this path: a
		// failed write gets no reply, and leaking the entry would grow
		// pending forever on a flapping connection.
		if c.abandon(id, ch) {
			callChPool.Put(ch)
		}
		return err
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return ErrClientClosed
		}
		callChPool.Put(ch)
		typ := f.Type
		f.Release()
		if typ != MsgPong {
			return fmt.Errorf("rpc: unexpected ping reply type %d", typ)
		}
		return nil
	case <-ctx.Done():
		if c.abandon(id, ch) {
			callChPool.Put(ch)
		}
		return ctx.Err()
	}
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.readErr = ErrClientClosed
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
	return c.conn.Close()
}

// RemoteError carries an error string returned by the server.
type RemoteError struct {
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Message }
