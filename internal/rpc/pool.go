package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Caller is the client-side call surface shared by Client (one connection)
// and Pool (N pooled connections). container.Remote speaks to either.
type Caller interface {
	// Call sends a request and blocks for its response or ctx cancellation.
	// The returned Payload is leased; the caller must Release it exactly
	// once when done with its Data (see Client.Call).
	Call(ctx context.Context, method Method, payload []byte) (Payload, error)
	// Ping round-trips a heartbeat frame.
	Ping(ctx context.Context) error
	// Close tears down the connection(s); in-flight calls fail.
	Close() error
}

var (
	_ Caller = (*Client)(nil)
	_ Caller = (*Pool)(nil)
)

// ErrNoConns is returned by Pool calls while every pooled connection is
// down and awaiting redial.
var ErrNoConns = errors.New("rpc: no live connections in pool")

// Pool default redial backoff parameters (see PoolConfig).
const (
	DefaultRedialBackoff    = 50 * time.Millisecond
	DefaultMaxRedialBackoff = 2 * time.Second
)

// PoolConfig parameterizes NewPool. Zero values select defaults.
type PoolConfig struct {
	// Conns is the number of connections to hold open; 0 or 1 selects a
	// single connection. More connections let concurrent batch frames
	// transfer in parallel instead of head-of-line-blocking behind one
	// in-progress frame write, and let the pool survive the loss of any
	// single connection.
	Conns int
	// Dial establishes one connection. Required. It is called Conns times
	// at construction and again, with backoff, whenever a pooled
	// connection dies.
	Dial func() (io.ReadWriteCloser, error)
	// RedialBackoff is the delay before the first reconnection attempt for
	// a dead connection; it doubles per consecutive failure. Zero selects
	// DefaultRedialBackoff.
	RedialBackoff time.Duration
	// MaxRedialBackoff caps the growing backoff. Zero selects
	// DefaultMaxRedialBackoff.
	MaxRedialBackoff time.Duration
}

// Pool is a fixed-size pool of RPC connections to one replica. Calls
// round-robin across the live connections; each connection is a full
// multiplexing Client with its own pending map, so responses correlate per
// connection and one slow frame write never blocks the other connections'
// traffic.
//
// When a connection dies, only the calls in flight on it fail — the other
// connections keep serving — and a monitor goroutine redials the lost
// connection with exponential backoff until it is restored or the pool is
// closed. While every connection is down, calls fail fast with ErrNoConns.
type Pool struct {
	cfg PoolConfig

	rr     atomic.Uint64
	slots  []atomic.Pointer[Client]
	target atomic.Int32 // routing target: new calls prefer slots[0:target]

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// PoolStats is a point-in-time snapshot of the pool's connection and
// write-side telemetry, aggregated across every slot. The cumulative
// counters (Writes, WriteQueued, WriteWait) reset for a slot when its
// connection dies and is redialed; consumers differencing snapshots should
// clamp negative deltas to zero.
type PoolStats struct {
	// Conns is the total slot count (PoolConfig.Conns).
	Conns int
	// Live is the number of slots holding a live connection.
	Live int
	// Target is the routing target set by SetTarget; new calls prefer the
	// first Target slots.
	Target int
	// BytesInFlight is the payload bytes being written across all live
	// connections at snapshot time.
	BytesInFlight int64
	// Writes is the total request frames written across live connections.
	Writes int64
	// WriteQueued counts writes that queued behind another in-progress
	// frame write — the signal that batches are transfer-bound.
	WriteQueued int64
	// WriteWait is the total time writes spent queued behind other writes.
	WriteWait time.Duration
}

// Stats snapshots the pool's aggregate telemetry.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{
		Conns:  len(p.slots),
		Target: int(p.target.Load()),
	}
	for i := range p.slots {
		c := p.slots[i].Load()
		if c == nil {
			continue
		}
		cs := c.Stats()
		if cs.Alive {
			st.Live++
		}
		st.BytesInFlight += cs.BytesInFlight
		st.Writes += cs.Writes
		st.WriteQueued += cs.WriteQueued
		st.WriteWait += cs.WriteWait
	}
	return st
}

// LiveConns reports live connections vs total slots from per-slot atomic
// loads and channel polls only — cheap enough for the per-dispatch
// scheduling path, unlike Stats, which also aggregates every slot's
// write-side counters.
func (p *Pool) LiveConns() (live, total int) {
	for i := range p.slots {
		if c := p.slots[i].Load(); c != nil && c.alive() {
			live++
		}
	}
	return live, len(p.slots)
}

// SetTarget sets the routing target: new calls round-robin over the first
// n slots (clamped to [1, Conns]) and only spill past them when none of
// those connections are live. Connections above the target stay open and
// keep their redial monitors — growing the target back is instant, with no
// redial churn — they just stop receiving new calls. Returns the applied
// target. The adaptive controller drives this between its bounds; static
// deployments never call it and route across every slot.
func (p *Pool) SetTarget(n int) int {
	if n < 1 {
		n = 1
	}
	if n > len(p.slots) {
		n = len(p.slots)
	}
	p.target.Store(int32(n))
	return n
}

// Target returns the current routing target.
func (p *Pool) Target() int { return int(p.target.Load()) }

// NewPool dials cfg.Conns connections and starts their redial monitors.
// Construction is all-or-nothing: if any initial dial fails, the already
// established connections are closed and the error is returned.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Dial == nil {
		return nil, errors.New("rpc: PoolConfig.Dial is required")
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = DefaultRedialBackoff
	}
	if cfg.MaxRedialBackoff <= 0 {
		cfg.MaxRedialBackoff = DefaultMaxRedialBackoff
	}
	p := &Pool{
		cfg:   cfg,
		slots: make([]atomic.Pointer[Client], cfg.Conns),
		stop:  make(chan struct{}),
	}
	p.target.Store(int32(cfg.Conns))
	for i := range p.slots {
		conn, err := cfg.Dial()
		if err != nil {
			for j := 0; j < i; j++ {
				p.slots[j].Load().Close()
			}
			return nil, err
		}
		p.slots[i].Store(NewClient(conn))
	}
	for i := range p.slots {
		p.wg.Add(1)
		go p.monitor(i)
	}
	return p, nil
}

// DialPool connects conns TCP connections to a container server at addr.
func DialPool(addr string, timeout time.Duration, conns int) (*Pool, error) {
	return NewPool(PoolConfig{
		Conns: conns,
		Dial: func() (io.ReadWriteCloser, error) {
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			if tcp, ok := conn.(*net.TCPConn); ok {
				tcp.SetNoDelay(true) // latency matters more than packet count
			}
			return conn, nil
		},
	})
}

// Conns returns the pool's configured connection count.
func (p *Pool) Conns() int { return len(p.slots) }

// monitor owns slot i: it waits for the slot's client to die, then redials
// with exponential backoff until the connection is restored or the pool
// closes. In-flight calls on the dead client have already been failed (and
// its descriptor closed) by its read loop; the nil slot simply routes new
// calls to the survivors.
//
// Backoff covers flapping, not just refused dials: every redial waits
// backoff first, and backoff only resets after a connection survives
// longer than MaxRedialBackoff. Without that, a listener that accepts and
// immediately drops connections (crashed container behind a live LB) would
// make "dial succeeded" reset the backoff and the monitor would spin
// connect/teardown at full speed.
func (p *Pool) monitor(i int) {
	defer p.wg.Done()
	backoff := p.cfg.RedialBackoff
	for {
		c := p.slots[i].Load()
		established := time.Now()
		select {
		case <-c.Done():
		case <-p.stop:
			return
		}
		p.slots[i].Store(nil)
		if time.Since(established) > p.cfg.MaxRedialBackoff {
			backoff = p.cfg.RedialBackoff // the connection was genuinely live
		}
		for {
			select {
			case <-time.After(backoff):
			case <-p.stop:
				return
			}
			if backoff *= 2; backoff > p.cfg.MaxRedialBackoff {
				backoff = p.cfg.MaxRedialBackoff
			}
			conn, err := p.cfg.Dial()
			if err == nil {
				p.slots[i].Store(NewClient(conn))
				break
			}
		}
	}
}

// pick returns the next live connection, round-robin over the first
// Target slots. Clients already known dead (their monitor hasn't swapped
// the slot yet) are skipped; a connection that dies between pick and use
// still fails the call, exactly as a single-connection client would, and
// callers above the RPC layer already handle call errors. When no
// connection inside the target is live, pick spills to the parked slots
// above it — a shrunken pool still prefers availability over its target.
func (p *Pool) pick() (*Client, error) {
	n := len(p.slots)
	t := int(p.target.Load())
	i := int(p.rr.Add(1) % uint64(t))
	for probe := 0; probe < t; probe++ {
		if c := p.slots[(i+probe)%t].Load(); c != nil && c.alive() {
			return c, nil
		}
	}
	for s := t; s < n; s++ {
		if c := p.slots[s].Load(); c != nil && c.alive() {
			return c, nil
		}
	}
	select {
	case <-p.stop:
		return nil, ErrClientClosed
	default:
		return nil, ErrNoConns
	}
}

// Call implements Caller over the next live pooled connection.
func (p *Pool) Call(ctx context.Context, method Method, payload []byte) (Payload, error) {
	c, err := p.pick()
	if err != nil {
		return Payload{}, err
	}
	return c.Call(ctx, method, payload)
}

// Ping implements Caller: it heartbeats one live connection (liveness of
// the replica, not of every socket — dead sockets are already redialing).
func (p *Pool) Ping(ctx context.Context) error {
	c, err := p.pick()
	if err != nil {
		return err
	}
	return c.Ping(ctx)
}

// Close stops the redial monitors and tears down every connection;
// in-flight calls fail.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() { close(p.stop) })
	p.wg.Wait() // monitors store no new clients after this
	var first error
	for i := range p.slots {
		if c := p.slots[i].Load(); c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
