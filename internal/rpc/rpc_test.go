package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Frame{ID: 42, Type: MsgRequest, Method: MethodPredict, Payload: []byte("hello")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 42 || out.Type != MsgRequest || out.Method != MethodPredict || string(out.Payload) != "hello" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{ID: 1, Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 0 {
		t.Fatalf("payload = %v", out.Payload)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, &Frame{Payload: make([]byte, MaxFrameSize+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	// A corrupt giant length prefix must be rejected on read too.
	bad := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read err = %v", err)
	}
}

func TestFrameShortLength(t *testing.T) {
	bad := []byte{2, 0, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected error on short frame")
	}
}

func TestFramePropertyRoundTrip(t *testing.T) {
	f := func(id uint64, typ, method uint8, payload []byte) bool {
		var buf bytes.Buffer
		in := &Frame{ID: id, Type: MsgType(typ), Method: Method(method), Payload: payload}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.ID == in.ID && out.Type == in.Type &&
			out.Method == in.Method && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// echoHandler echoes payloads for MethodPredict and fails MethodInfo.
// Per the Handler contract the echo copies into scratch — returning a
// slice aliasing the request payload is forbidden (the server recycles
// the returned buffer into its response pool).
func echoHandler(method Method, payload, scratch []byte) ([]byte, error) {
	switch method {
	case MethodPredict:
		return append(scratch, payload...), nil
	default:
		return nil, fmt.Errorf("boom")
	}
}

func startServer(t *testing.T, h Handler) (addr string, stop func()) {
	t.Helper()
	srv := NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, func() { srv.Close() }
}

func TestClientServerEcho(t *testing.T) {
	addr, stop := startServer(t, echoHandler)
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(context.Background(), MethodPredict, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "abc" {
		t.Fatalf("resp = %q", resp.Data)
	}
	resp.Release()
}

func TestClientServerRemoteError(t *testing.T) {
	addr, stop := startServer(t, echoHandler)
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), MethodInfo, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Message != "boom" {
		t.Fatalf("message = %q", re.Message)
	}
}

func TestClientPing(t *testing.T) {
	addr, stop := startServer(t, echoHandler)
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	addr, stop := startServer(t, echoHandler)
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("g%d-i%d", g, i))
				resp, err := c.Call(context.Background(), MethodPredict, msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Data, msg) {
					errs <- fmt.Errorf("cross-talk: sent %q got %q", msg, resp.Data)
					return
				}
				resp.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	block := make(chan struct{})
	addr, stop := startServer(t, func(Method, []byte, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	defer stop()
	defer close(block)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = c.Call(ctx, MethodPredict, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientFailsAfterServerClose(t *testing.T) {
	addr, stop := startServer(t, echoHandler)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), MethodPredict, []byte("x")); err != nil {
		t.Fatal(err)
	}
	stop()
	// Allow the read loop to observe EOF.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Call(context.Background(), MethodPredict, []byte("x")); err != nil {
			return // expected failure path reached
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("calls kept succeeding after server close")
}

func TestClientCloseIdempotent(t *testing.T) {
	addr, stop := startServer(t, echoHandler)
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), MethodPredict, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(echoHandler)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerSlowRequestDoesNotBlockPing(t *testing.T) {
	release := make(chan struct{})
	addr, stop := startServer(t, func(_ Method, _, scratch []byte) ([]byte, error) {
		<-release
		return append(scratch, "done"...), nil
	})
	defer stop()
	defer close(release)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	go c.Call(context.Background(), MethodPredict, nil) // parked in handler

	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping blocked behind slow request: %v", err)
	}
}
