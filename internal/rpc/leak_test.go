package rpc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// stuckConn fails every Write and blocks Reads until Close, modeling a
// connection whose send side has failed while the receive side idles.
type stuckConn struct {
	closed chan struct{}
}

func newStuckConn() *stuckConn { return &stuckConn{closed: make(chan struct{})} }

func (c *stuckConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, errors.New("stuck conn closed")
}

func (c *stuckConn) Write(p []byte) (int, error) {
	return 0, errors.New("write failed")
}

func (c *stuckConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

func (c *Client) pendingLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Regression test: Ping used to leave its correlation entry in the pending
// map when the frame write failed, leaking one entry per failed heartbeat.
func TestPingWriteFailureDoesNotLeakPending(t *testing.T) {
	conn := newStuckConn()
	c := NewClient(conn)
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Ping(context.Background()); err == nil {
			t.Fatal("ping succeeded on a dead connection")
		}
	}
	if n := c.pendingLen(); n != 0 {
		t.Fatalf("pending map leaked %d entries after failed pings", n)
	}
}

func TestCallWriteFailureDoesNotLeakPending(t *testing.T) {
	conn := newStuckConn()
	c := NewClient(conn)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := c.Call(ctx, MethodPredict, []byte("x")); err == nil {
			t.Fatal("call succeeded on a dead connection")
		}
	}
	if n := c.pendingLen(); n != 0 {
		t.Fatalf("pending map leaked %d entries after failed calls", n)
	}
}
