package rpc

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// The RPC layer reads length-prefixed frames from the network; adversarial
// or corrupt bytes must never panic or over-allocate — only return errors.

func TestReadFrameNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		r := bytes.NewReader(buf)
		for {
			if _, err := ReadFrame(r); err != nil {
				break
			}
		}
	}
}

func TestReadFrameRejectsHugeLengthWithoutAllocating(t *testing.T) {
	// A 4 GiB length prefix must be rejected before any body read.
	buf := []byte{0xfe, 0xff, 0xff, 0xff}
	r := &countingReader{r: bytes.NewReader(buf)}
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("huge frame accepted")
	}
	if r.read > 4 {
		t.Fatalf("read %d bytes past the length prefix", r.read)
	}
}

type countingReader struct {
	r    io.Reader
	read int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += n
	return n, err
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{ID: 1, Type: MsgRequest, Payload: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must only
// ever return frames or errors — no panics, no over-allocation past the
// length prefix — and every frame it does return must be internally
// consistent and releasable (the lease contract holds even for garbage
// input). Run the smoke in CI with -fuzz=FuzzReadFrame -fuzztime=5s.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, &Frame{ID: 3, Type: MsgResponse, Method: MethodPredict, Payload: []byte("seed")})
	f.Add(seed.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})        // huge length prefix
	f.Add([]byte{2, 0, 0, 0, 0, 0})              // short frame length
	f.Add(seed.Bytes()[:seed.Len()-1])           // truncated body
	f.Add(append(seed.Bytes(), seed.Bytes()...)) // two frames back to back
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(fr.Payload) > MaxFrameSize {
				t.Fatalf("payload %d exceeds MaxFrameSize", len(fr.Payload))
			}
			fr.Release()
		}
	})
}

func TestFrameStreamProperty(t *testing.T) {
	// Property: any sequence of frames written back to back reads back in
	// order with contents intact.
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		for i, p := range payloads {
			if len(p) > 1<<16 {
				p = p[:1<<16]
			}
			frame := &Frame{ID: uint64(i), Type: MsgResponse, Method: MethodPredict, Payload: p}
			if err := WriteFrame(&buf, frame); err != nil {
				return false
			}
		}
		for i, p := range payloads {
			if len(p) > 1<<16 {
				p = p[:1<<16]
			}
			got, err := ReadFrame(&buf)
			if err != nil {
				return false
			}
			if got.ID != uint64(i) || !bytes.Equal(got.Payload, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
