package rpc

import (
	"errors"
	"io"
	"net"
	"sync"
)

// Handler processes one request and returns the response payload.
//
// The request payload aliases a pooled frame body whose lease the server
// loop ends after the handler's response has been written — so a handler
// may return a response that aliases the payload (echo-style), but must
// not retain the payload past its return (the codec handlers decode —
// copy — immediately, which is the intended shape).
type Handler func(method Method, payload []byte) ([]byte, error)

// Server accepts connections and dispatches framed requests to a Handler.
// Each request is served on its own goroutine so a slow batch on one
// request id does not head-of-line-block heartbeats or other requests.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server dispatching to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free port) and
// returns the bound address. Serving proceeds in the background until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("rpc: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if tcp, ok := conn.(*net.TCPConn); ok {
				tcp.SetNoDelay(true)
			}
			s.track(conn)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// ServeConn serves a single established connection until it fails or the
// server closes. It may be used directly with in-memory pipes (tests,
// simulated links).
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	if nc, ok := conn.(net.Conn); ok {
		defer s.untrack(nc)
	}
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case MsgPing:
			id := f.ID
			f.Release()
			writeMu.Lock()
			WriteFrame(conn, &Frame{ID: id, Type: MsgPong})
			writeMu.Unlock()
		case MsgRequest:
			reqWG.Add(1)
			go func(f *Frame) {
				defer reqWG.Done()
				resp, err := s.handler(f.Method, f.Payload)
				out := &Frame{ID: f.ID, Type: MsgResponse, Method: f.Method, Payload: resp}
				if err != nil {
					out.Type = MsgError
					out.Payload = []byte(err.Error())
				}
				writeMu.Lock()
				WriteFrame(conn, out)
				writeMu.Unlock()
				// Server-side release point: the handler has returned and
				// its response — which may alias the request payload — is
				// on the wire, so the request frame's lease ends here.
				f.Release()
			}(f)
		default:
			// Ignore unexpected frame kinds rather than killing the
			// connection (forward compatibility) — but end their lease.
			f.Release()
		}
	}
}

// Close stops accepting, closes all live connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
