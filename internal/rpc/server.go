package rpc

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Handler processes one request and returns the response payload,
// normally by appending it to scratch.
//
// The request payload aliases a pooled frame body whose lease the server
// loop ends after the handler's response has been written; a handler must
// not retain the payload past its return (the codec handlers decode —
// copy — immediately, which is the intended shape).
//
// scratch is a leased response body: a pooled buffer, length 0, that the
// server recycles after the response frame hits the wire. A handler
// appends its response to scratch and returns the resulting slice — even
// if the appends outgrow scratch's capacity, the grown buffer's ownership
// passes to the server and is pooled for the next request, so
// steady-state response encoding allocates nothing at any stable response
// size. A handler may instead return a freshly allocated slice it
// surrenders; what it must NOT return is a slice aliasing the request
// payload (copy into scratch to echo) or memory it retains, since the
// server recycles the returned buffer into its response pool.
type Handler func(method Method, payload, scratch []byte) ([]byte, error)

// Response bodies are pooled separately from read-side frame bodies:
// they grow to the server's stable response size and obey the same 1 MiB
// retention cap (one giant response must not pin a giant buffer forever).
const maxPooledRespBuf = maxPooledBody

var respBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// activeRespBufs counts leased response bodies not yet recycled — the
// response-direction analogue of activeLeases, asserted to drain back to
// baseline by the lease tests (including on write-failure paths).
var activeRespBufs atomic.Int64

func getRespBuf() *[]byte {
	activeRespBufs.Add(1)
	return respBufPool.Get().(*[]byte)
}

// putRespBuf ends a response body's lease, recycling it unless an outlier
// response grew it past the retention cap (or the handler returned some
// degenerate tiny slice that is not worth pooling). Reports whether the
// buffer was pooled (exercised by the retention regression test).
func putRespBuf(b *[]byte) bool {
	activeRespBufs.Add(-1)
	if cap(*b) > maxPooledRespBuf || cap(*b) < 512 {
		return false
	}
	*b = (*b)[:0]
	respBufPool.Put(b)
	return true
}

// Server accepts connections and dispatches framed requests to a Handler.
// Requests are served concurrently — the read loop hands each request
// frame to an idle worker goroutine (spawning a new one only when every
// worker is busy, so the pool grows to the connection's peak request
// concurrency and no further) — so a slow batch on one request id does
// not head-of-line-block heartbeats or other requests. Reusing workers
// keeps their stacks warm: a goroutine spawned per request would regrow
// its stack through the handler's decode/predict/encode chain every
// time, which profiles as runtime.newstack/copystack at high frame
// rates.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server dispatching to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free port) and
// returns the bound address. Serving proceeds in the background until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("rpc: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if tcp, ok := conn.(*net.TCPConn); ok {
				tcp.SetNoDelay(true)
			}
			s.track(conn)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// ServeConn serves a single established connection until it fails or the
// server closes. It may be used directly with in-memory pipes (tests,
// simulated links).
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	if nc, ok := conn.(net.Conn); ok {
		defer s.untrack(nc)
	}
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	reqCh := make(chan *Frame)
	defer reqWG.Wait()
	defer close(reqCh)
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case MsgPing:
			id := f.ID
			f.Release()
			writeMu.Lock()
			WriteFrame(conn, &Frame{ID: id, Type: MsgPong})
			writeMu.Unlock()
		case MsgRequest:
			// Hand the frame to a parked worker if one is waiting;
			// otherwise every worker is mid-request, so grow the pool.
			// The handoff never blocks the read loop.
			select {
			case reqCh <- f:
			default:
				reqWG.Add(1)
				go s.serveRequests(conn, &writeMu, reqCh, f, &reqWG)
			}
		default:
			// Ignore unexpected frame kinds rather than killing the
			// connection (forward compatibility) — but end their lease.
			f.Release()
		}
	}
}

// serveRequests is one request worker: it serves its seed frame, then
// parks on reqCh for more until the connection's read loop closes it.
func (s *Server) serveRequests(conn io.ReadWriteCloser, writeMu *sync.Mutex, reqCh <-chan *Frame, f *Frame, wg *sync.WaitGroup) {
	defer wg.Done()
	out := new(Frame) // reused response frame; one alloc per worker, not per request
	for {
		s.serveRequest(conn, writeMu, f, out)
		var ok bool
		if f, ok = <-reqCh; !ok {
			return
		}
	}
}

func (s *Server) serveRequest(conn io.ReadWriteCloser, writeMu *sync.Mutex, f, out *Frame) {
	scratch := getRespBuf()
	resp, err := s.handler(f.Method, f.Payload, (*scratch)[:0])
	*out = Frame{ID: f.ID, Type: MsgResponse, Method: f.Method, Payload: resp}
	if err != nil {
		out.Type = MsgError
		out.Payload = []byte(err.Error())
	}
	writeMu.Lock()
	WriteFrame(conn, out)
	writeMu.Unlock()
	// Server-side release points, in order, after the write
	// (successful or not — a failed write still ends both
	// leases): the request frame's body lease ends here, and
	// the response body is recycled. If the handler's appends
	// outgrew the scratch, adopt the grown buffer so the pool
	// converges on the server's stable response size.
	f.Release()
	if err == nil && cap(resp) > cap(*scratch) {
		*scratch = resp[:0]
	}
	putRespBuf(scratch)
	out.Payload = nil // the response body's lease ended; do not retain it in the parked worker
}

// Close stops accepting, closes all live connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
