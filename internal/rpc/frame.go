// Package rpc implements the lightweight cross-process RPC system that
// connects Clipper's model abstraction layer to its model containers
// (paper §4.4).
//
// The protocol is a minimal length-prefixed binary framing over any
// io.ReadWriter (normally TCP): each frame carries a request id for
// response correlation, a message type, a method id, and an opaque payload.
// Requests multiplex over one connection; the server may answer them out of
// order. The codec for prediction batches lives in codec.go.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType distinguishes frame kinds.
type MsgType uint8

// Frame kinds.
const (
	MsgRequest  MsgType = 0
	MsgResponse MsgType = 1
	MsgError    MsgType = 2
	MsgPing     MsgType = 3
	MsgPong     MsgType = 4
)

// Method identifies the remote operation being invoked.
type Method uint8

// Methods understood by model-container servers.
const (
	MethodPredict Method = 1
	MethodInfo    Method = 2
)

// MaxFrameSize bounds a single frame's payload (64 MiB), protecting both
// sides from corrupt length prefixes.
const MaxFrameSize = 64 << 20

// Frame is one protocol message.
type Frame struct {
	ID      uint64
	Type    MsgType
	Method  Method
	Payload []byte
}

// frame header: 4 length + 8 id + 1 type + 1 method = 14 bytes; the length
// field counts the 10 header bytes after it plus the payload.
const headerLen = 14

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// WriteFrame serializes f to w. It performs a single Write call so that
// concurrent writers guarded by a mutex cannot interleave frames.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, headerLen+len(f.Payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(10+len(f.Payload)))
	binary.LittleEndian.PutUint64(buf[4:12], f.ID)
	buf[12] = byte(f.Type)
	buf[13] = byte(f.Method)
	copy(buf[headerLen:], f.Payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (*Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 10 {
		return nil, fmt.Errorf("rpc: short frame length %d", n)
	}
	if n-10 > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return &Frame{
		ID:      binary.LittleEndian.Uint64(body[0:8]),
		Type:    MsgType(body[8]),
		Method:  Method(body[9]),
		Payload: body[10:],
	}, nil
}
