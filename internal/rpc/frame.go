// Package rpc implements the lightweight cross-process RPC system that
// connects Clipper's model abstraction layer to its model containers
// (paper §4.4).
//
// The protocol is a minimal length-prefixed binary framing over any
// io.ReadWriter (normally TCP): each frame carries a request id for
// response correlation, a message type, a method id, and an opaque payload.
// Requests multiplex over one connection; the server may answer them out of
// order.
//
// Two client shapes share the Caller interface. Client multiplexes
// concurrent calls over a single connection, correlating responses by
// request id through a per-connection pending map. Pool holds N such
// connections to one replica and round-robins calls across them, so
// concurrent batch frames transfer in parallel instead of
// head-of-line-blocking behind one in-progress write; when a pooled
// connection dies, only its in-flight calls fail — the survivors keep
// serving while the lost connection is redialed with backoff. The frame
// wire format and both layers' failure semantics are documented in
// docs/ARCHITECTURE.md.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
)

// MsgType distinguishes frame kinds.
type MsgType uint8

// Frame kinds.
const (
	MsgRequest  MsgType = 0
	MsgResponse MsgType = 1
	MsgError    MsgType = 2
	MsgPing     MsgType = 3
	MsgPong     MsgType = 4
)

// Method identifies the remote operation being invoked.
type Method uint8

// Methods understood by model-container servers.
const (
	MethodPredict Method = 1
	MethodInfo    Method = 2
)

// MaxFrameSize bounds a single frame's payload (64 MiB), protecting both
// sides from corrupt length prefixes.
const MaxFrameSize = 64 << 20

// Frame is one protocol message.
//
// Frames returned by ReadFrame are *leased*: their Payload aliases a
// pooled body buffer, and the reader that consumed the frame must call
// Release exactly once when the payload's lifetime ends (see the
// "payload lifetime & release points" section of docs/ARCHITECTURE.md).
// Frames constructed by callers for WriteFrame carry no lease; Release
// on them is a harmless no-op.
type Frame struct {
	ID      uint64
	Type    MsgType
	Method  Method
	Payload []byte

	body   *[]byte // pooled body backing Payload; nil when unpooled
	leased bool    // came from ReadFrame via recvFramePool
}

// Release returns the frame's pooled body (and the frame itself, when it
// came from ReadFrame) to their pools. The frame and its Payload must not
// be used after Release; calling Release twice on the same leased frame
// corrupts the pools. Release on a frame that was never leased (e.g. one
// built for WriteFrame) is a no-op, and Release on nil is safe.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if f.body != nil {
		putBody(f.body)
		f.body = nil
	}
	f.Payload = nil
	if f.leased {
		f.leased = false
		activeLeases.Add(-1)
		recvFramePool.Put(f)
	}
}

// recvFramePool recycles the Frame structs handed out by ReadFrame, so the
// steady-state read path allocates neither the frame nor (via bodyPools)
// its body.
var recvFramePool = sync.Pool{
	New: func() any { return &Frame{} },
}

// activeLeases counts leased frames not yet released — the invariant the
// lease tests assert drains back to its baseline after every exchange.
var activeLeases atomic.Int64

// Frame bodies are pooled in power-of-two size classes from 1<<minBodyBits
// up to 1<<maxBodyBits (1 MiB). Bodies above the cap are allocated fresh
// and never pooled: one giant batch must not pin a giant buffer in the
// pool forever (the same retention rule container.putEncBuf applies on the
// encode side).
const (
	minBodyBits = 9
	maxBodyBits = 20
	// maxPooledBody is the largest frame body the read path recycles.
	maxPooledBody = 1 << maxBodyBits
)

var bodyPools [maxBodyBits - minBodyBits + 1]sync.Pool

// bodyClass maps a body size (2 ≤ n ≤ maxPooledBody) to its pool index.
func bodyClass(n int) int {
	b := bits.Len(uint(n - 1)) // smallest power-of-two exponent covering n
	if b < minBodyBits {
		return 0
	}
	return b - minBodyBits
}

// getBody returns a pooled buffer with capacity ≥ n, or nil when n exceeds
// maxPooledBody (the caller allocates fresh and the body stays unpooled).
func getBody(n int) *[]byte {
	if n > maxPooledBody {
		return nil
	}
	c := bodyClass(n)
	if b, ok := bodyPools[c].Get().(*[]byte); ok {
		return b
	}
	b := make([]byte, 1<<(minBodyBits+c))
	return &b
}

func putBody(b *[]byte) {
	n := cap(*b)
	if n < 1<<minBodyBits || n > maxPooledBody || n&(n-1) != 0 {
		return // not one of ours; drop rather than poison a class
	}
	*b = (*b)[:n]
	bodyPools[bodyClass(n)].Put(b)
}

// frame header: 4 length + 8 id + 1 type + 1 method = 14 bytes; the length
// field counts the 10 header bytes after it plus the payload.
const headerLen = 14

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// inlineFrameMax is the largest frame (header + payload) that WriteFrame
// copies into one pooled buffer for a single Write. Larger payloads go out
// via net.Buffers (writev on TCP) without copying at all.
const inlineFrameMax = 4096

// framePool recycles header/body scratch buffers so the frame hot paths
// allocate as little as possible: on the write side small frames borrow a
// full inline buffer and large frames borrow it for the 14-byte header of
// their writev pair; on the read side ReadFrame borrows it for the 4-byte
// length prefix.
var framePool = sync.Pool{
	New: func() any { return &frameBuf{} },
}

type frameBuf struct {
	b    [inlineFrameMax]byte
	vecs net.Buffers // scratch iovec for the writev path
}

// WriteFrame serializes f to w without allocating or copying large
// payloads. Frames up to inlineFrameMax are sent as one Write from a
// pooled buffer; larger frames are sent as a (header, payload) pair via
// net.Buffers, which collapses to a single writev on net.Conn. Callers
// serializing concurrent writers with a mutex therefore still cannot
// interleave frames: both paths complete under one WriteFrame call.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	fb := framePool.Get().(*frameBuf)
	hdr := fb.b[:headerLen]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(10+len(f.Payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], f.ID)
	hdr[12] = byte(f.Type)
	hdr[13] = byte(f.Method)

	var err error
	if headerLen+len(f.Payload) <= inlineFrameMax {
		n := copy(fb.b[headerLen:], f.Payload)
		_, err = w.Write(fb.b[:headerLen+n])
	} else {
		fb.vecs = append(fb.vecs[:0], hdr, f.Payload)
		orig := fb.vecs // WriteTo consumes the field; keep the backing array
		_, err = fb.vecs.WriteTo(w)
		orig[0], orig[1] = nil, nil // don't pin the payload in the pool
		fb.vecs = orig[:0]
	}
	framePool.Put(fb)
	return err
}

// ReadFrame reads one frame from r.
//
// The 4-byte length prefix is read into a pooled scratch buffer (a
// stack-declared array would escape through the io.Reader interface and
// cost an allocation per frame). The returned frame is leased: its body
// comes from a size-classed pool (bodies ≤ 1 MiB) and the Frame struct
// from recvFramePool, so the steady-state read path allocates nothing —
// the consumer must call Frame.Release exactly once when it is done with
// the payload. The release points are fixed by contract: the client
// releases a response after decoding it (Remote.PredictBatchContext),
// the server releases a request after the Handler's response has been
// written, and responses to abandoned calls are released by whoever
// finds them (Client.readLoop or the cancelled caller's drain).
func ReadFrame(r io.Reader) (*Frame, error) {
	fb := framePool.Get().(*frameBuf)
	_, err := io.ReadFull(r, fb.b[:4])
	n := binary.LittleEndian.Uint32(fb.b[:4])
	framePool.Put(fb)
	if err != nil {
		return nil, err
	}
	if n < 10 {
		return nil, fmt.Errorf("rpc: short frame length %d", n)
	}
	if n-10 > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	var body []byte
	bp := getBody(int(n))
	if bp != nil {
		body = (*bp)[:n]
	} else {
		body = make([]byte, n) // above maxPooledBody: fresh, never pooled
	}
	if _, err := io.ReadFull(r, body); err != nil {
		if bp != nil {
			putBody(bp)
		}
		return nil, err
	}
	f := recvFramePool.Get().(*Frame)
	f.ID = binary.LittleEndian.Uint64(body[0:8])
	f.Type = MsgType(body[8])
	f.Method = Method(body[9])
	f.Payload = body[10:n]
	f.body = bp
	f.leased = true
	activeLeases.Add(1)
	return f, nil
}
