// Package rpc implements the lightweight cross-process RPC system that
// connects Clipper's model abstraction layer to its model containers
// (paper §4.4).
//
// The protocol is a minimal length-prefixed binary framing over any
// io.ReadWriter (normally TCP): each frame carries a request id for
// response correlation, a message type, a method id, and an opaque payload.
// Requests multiplex over one connection; the server may answer them out of
// order.
//
// Two client shapes share the Caller interface. Client multiplexes
// concurrent calls over a single connection, correlating responses by
// request id through a per-connection pending map. Pool holds N such
// connections to one replica and round-robins calls across them, so
// concurrent batch frames transfer in parallel instead of
// head-of-line-blocking behind one in-progress write; when a pooled
// connection dies, only its in-flight calls fail — the survivors keep
// serving while the lost connection is redialed with backoff. The frame
// wire format and both layers' failure semantics are documented in
// docs/ARCHITECTURE.md.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MsgType distinguishes frame kinds.
type MsgType uint8

// Frame kinds.
const (
	MsgRequest  MsgType = 0
	MsgResponse MsgType = 1
	MsgError    MsgType = 2
	MsgPing     MsgType = 3
	MsgPong     MsgType = 4
)

// Method identifies the remote operation being invoked.
type Method uint8

// Methods understood by model-container servers.
const (
	MethodPredict Method = 1
	MethodInfo    Method = 2
)

// MaxFrameSize bounds a single frame's payload (64 MiB), protecting both
// sides from corrupt length prefixes.
const MaxFrameSize = 64 << 20

// Frame is one protocol message.
type Frame struct {
	ID      uint64
	Type    MsgType
	Method  Method
	Payload []byte
}

// frame header: 4 length + 8 id + 1 type + 1 method = 14 bytes; the length
// field counts the 10 header bytes after it plus the payload.
const headerLen = 14

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// inlineFrameMax is the largest frame (header + payload) that WriteFrame
// copies into one pooled buffer for a single Write. Larger payloads go out
// via net.Buffers (writev on TCP) without copying at all.
const inlineFrameMax = 4096

// framePool recycles header/body scratch buffers so the frame hot paths
// allocate as little as possible: on the write side small frames borrow a
// full inline buffer and large frames borrow it for the 14-byte header of
// their writev pair; on the read side ReadFrame borrows it for the 4-byte
// length prefix.
var framePool = sync.Pool{
	New: func() any { return &frameBuf{} },
}

type frameBuf struct {
	b    [inlineFrameMax]byte
	vecs net.Buffers // scratch iovec for the writev path
}

// WriteFrame serializes f to w without allocating or copying large
// payloads. Frames up to inlineFrameMax are sent as one Write from a
// pooled buffer; larger frames are sent as a (header, payload) pair via
// net.Buffers, which collapses to a single writev on net.Conn. Callers
// serializing concurrent writers with a mutex therefore still cannot
// interleave frames: both paths complete under one WriteFrame call.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	fb := framePool.Get().(*frameBuf)
	hdr := fb.b[:headerLen]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(10+len(f.Payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], f.ID)
	hdr[12] = byte(f.Type)
	hdr[13] = byte(f.Method)

	var err error
	if headerLen+len(f.Payload) <= inlineFrameMax {
		n := copy(fb.b[headerLen:], f.Payload)
		_, err = w.Write(fb.b[:headerLen+n])
	} else {
		fb.vecs = append(fb.vecs[:0], hdr, f.Payload)
		orig := fb.vecs // WriteTo consumes the field; keep the backing array
		_, err = fb.vecs.WriteTo(w)
		orig[0], orig[1] = nil, nil // don't pin the payload in the pool
		fb.vecs = orig[:0]
	}
	framePool.Put(fb)
	return err
}

// ReadFrame reads one frame from r.
//
// The 4-byte length prefix is read into a pooled scratch buffer (a
// stack-declared array would escape through the io.Reader interface and
// cost an allocation per frame). The frame body, however, is freshly
// allocated every time: Frame.Payload aliases it and the payload's
// lifetime extends past ReadFrame with no explicit release point — the
// client hands it to the codec inside Remote.PredictBatchContext, and the
// server hands it to an arbitrary Handler that may retain it. Pooling the
// body needs a payload-release contract past the codec (see the read-side
// frame buffer reuse item in ROADMAP.md) and is deliberately not done
// here.
func ReadFrame(r io.Reader) (*Frame, error) {
	fb := framePool.Get().(*frameBuf)
	_, err := io.ReadFull(r, fb.b[:4])
	n := binary.LittleEndian.Uint32(fb.b[:4])
	framePool.Put(fb)
	if err != nil {
		return nil, err
	}
	if n < 10 {
		return nil, fmt.Errorf("rpc: short frame length %d", n)
	}
	if n-10 > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return &Frame{
		ID:      binary.LittleEndian.Uint64(body[0:8]),
		Type:    MsgType(body[8]),
		Method:  Method(body[9]),
		Payload: body[10:],
	}, nil
}
