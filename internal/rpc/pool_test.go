package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pipeDialer dials in-memory connections to an rpc.Server and keeps the
// client-side endpoints so tests can kill individual pooled connections.
type pipeDialer struct {
	srv *Server

	mu    sync.Mutex
	conns []net.Conn
	fail  error // when set, Dial returns it
}

func newPipeDialer(h Handler) *pipeDialer {
	return &pipeDialer{srv: NewServer(h)}
}

func (d *pipeDialer) Dial() (io.ReadWriteCloser, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fail != nil {
		return nil, d.fail
	}
	cli, srv := net.Pipe()
	go d.srv.ServeConn(srv)
	d.conns = append(d.conns, cli)
	return cli, nil
}

func (d *pipeDialer) setFail(err error) {
	d.mu.Lock()
	d.fail = err
	d.mu.Unlock()
}

// kill closes the i-th connection ever dialed, simulating its loss.
func (d *pipeDialer) kill(i int) {
	d.mu.Lock()
	c := d.conns[i]
	d.mu.Unlock()
	c.Close()
}

func (d *pipeDialer) dialed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

func newTestPool(t *testing.T, d *pipeDialer, conns int) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{
		Conns:         conns,
		Dial:          d.Dial,
		RedialBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Close()
		d.srv.Close()
	})
	return p
}

func TestPoolRoundRobinEcho(t *testing.T) {
	d := newPipeDialer(echoHandler)
	p := newTestPool(t, d, 3)
	if p.Conns() != 3 {
		t.Fatalf("Conns() = %d, want 3", p.Conns())
	}
	if d.dialed() != 3 {
		t.Fatalf("dialed %d connections, want 3", d.dialed())
	}
	for i := 0; i < 9; i++ {
		msg := []byte(fmt.Sprintf("msg-%d", i))
		resp, err := p.Call(context.Background(), MethodPredict, msg)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Data) != string(msg) {
			t.Fatalf("resp = %q, want %q", resp.Data, msg)
		}
		resp.Release()
	}
	if err := p.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPoolFailoverAndRedial(t *testing.T) {
	d := newPipeDialer(echoHandler)
	p := newTestPool(t, d, 2)

	// Kill one connection; calls racing the death notification may fail,
	// but the pool must quickly settle into serving every call on the
	// survivor while the monitor redials.
	d.kill(0)
	deadline := time.Now().Add(5 * time.Second)
	streak := 0
	for streak < 20 {
		if _, err := p.Call(context.Background(), MethodPredict, []byte("x")); err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("calls still failing after kill: %v", err)
			}
			streak = 0
			continue
		}
		streak++
	}
	// The monitor must eventually restore the lost connection.
	deadline = time.Now().Add(5 * time.Second)
	for d.dialed() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("connection was not redialed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolInFlightCallOnDeadConnFails(t *testing.T) {
	block := make(chan struct{})
	d := newPipeDialer(func(method Method, payload, scratch []byte) ([]byte, error) {
		<-block
		return append(scratch, payload...), nil
	})
	defer close(block)
	p := newTestPool(t, d, 1)

	errc := make(chan error, 1)
	go func() {
		_, err := p.Call(context.Background(), MethodPredict, []byte("x"))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the call reach the server
	d.kill(0)
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("in-flight call on dead connection returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call did not fail after its connection died")
	}
}

func TestPoolAllConnsDown(t *testing.T) {
	d := newPipeDialer(echoHandler)
	p := newTestPool(t, d, 2)
	d.setFail(errors.New("dial refused"))
	d.kill(0)
	d.kill(1)
	// Once both monitors notice, calls fail fast with ErrNoConns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := p.Call(context.Background(), MethodPredict, []byte("x"))
		if errors.Is(err, ErrNoConns) {
			break
		}
		if err == nil {
			t.Fatal("call succeeded with every connection dead")
		}
		if time.Now().After(deadline) {
			t.Fatalf("err = %v, want ErrNoConns", err)
		}
		time.Sleep(time.Millisecond)
	}
	// Recovery: dialing works again, the backoff loop restores service.
	d.setFail(nil)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Call(context.Background(), MethodPredict, []byte("x")); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("pool did not recover after dialing resumed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolRedialBackoffGrows(t *testing.T) {
	var attempts atomic.Int64
	d := newPipeDialer(echoHandler)
	p, err := NewPool(PoolConfig{
		Conns: 1,
		Dial: func() (io.ReadWriteCloser, error) {
			if attempts.Add(1) > 1 { // first dial (construction) succeeds
				return nil, errors.New("down")
			}
			return d.Dial()
		},
		RedialBackoff:    10 * time.Millisecond,
		MaxRedialBackoff: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		p.Close()
		d.srv.Close()
	}()
	d.kill(0)
	// With backoff 10ms doubling to a 40ms cap, 150ms admits at most
	// ~6 attempts; without backoff the tight loop would spin hundreds.
	time.Sleep(150 * time.Millisecond)
	if n := attempts.Load(); n > 10 {
		t.Fatalf("%d dial attempts in 150ms: backoff not applied", n)
	}
}

func TestPoolBackoffCoversFlappingConns(t *testing.T) {
	// A listener that accepts and immediately drops connections (crashed
	// container behind a live load balancer): Dial succeeds, the client
	// dies instantly. The monitor must pace these redials with backoff,
	// not spin connect/teardown at full speed.
	var dials atomic.Int64
	p, err := NewPool(PoolConfig{
		Conns: 1,
		Dial: func() (io.ReadWriteCloser, error) {
			dials.Add(1)
			cli, srv := net.Pipe()
			srv.Close() // accepted, then dropped before any frame
			return cli, nil
		},
		RedialBackoff:    10 * time.Millisecond,
		MaxRedialBackoff: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// With backoff never resetting (no connection lives > 40ms), 200ms
	// admits ~6 redials; an unpaced loop would manage thousands.
	time.Sleep(200 * time.Millisecond)
	if n := dials.Load(); n > 15 {
		t.Fatalf("%d dials in 200ms: flapping connections are not backed off", n)
	}
}

func TestPoolConstructionFailureClosesDialed(t *testing.T) {
	d := newPipeDialer(echoHandler)
	defer d.srv.Close()
	calls := 0
	_, err := NewPool(PoolConfig{
		Conns: 3,
		Dial: func() (io.ReadWriteCloser, error) {
			calls++
			if calls == 3 {
				return nil, errors.New("third dial fails")
			}
			return d.Dial()
		},
	})
	if err == nil {
		t.Fatal("NewPool succeeded despite failed dial")
	}
	// The two established connections must have been closed: a write on
	// them fails.
	for i := 0; i < 2; i++ {
		d.mu.Lock()
		c := d.conns[i]
		d.mu.Unlock()
		if _, werr := c.Write([]byte("x")); werr == nil {
			t.Fatalf("connection %d still open after construction failure", i)
		}
	}
}

func TestPoolCloseFailsCalls(t *testing.T) {
	d := newPipeDialer(echoHandler)
	p := newTestPool(t, d, 2)
	if _, err := p.Call(context.Background(), MethodPredict, []byte("x")); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Call(context.Background(), MethodPredict, []byte("x")); err == nil {
		t.Fatal("call succeeded after Close")
	}
	p.Close() // idempotent
}
