package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// slowWriteConn delays every write, holding the client's write mutex long
// enough that concurrent calls observably queue behind each other.
type slowWriteConn struct {
	net.Conn
	delay time.Duration
}

func (c *slowWriteConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(p)
}

func TestClientWriteQueueStats(t *testing.T) {
	srv := NewServer(echoHandler)
	defer srv.Close()
	cli, conn := net.Pipe()
	go srv.ServeConn(conn)
	c := NewClient(&slowWriteConn{Conn: cli, delay: 2 * time.Millisecond})
	defer c.Close()

	const calls = 4
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(context.Background(), MethodPredict, []byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := c.Stats()
	if !st.Alive {
		t.Fatal("client should be alive")
	}
	if st.Writes != calls {
		t.Fatalf("Writes = %d, want %d", st.Writes, calls)
	}
	// With a 2ms write hold and 4 concurrent calls, at least the last
	// writer queued behind an in-progress write.
	if st.WriteQueued < 1 {
		t.Fatalf("WriteQueued = %d, want >= 1", st.WriteQueued)
	}
	if st.WriteWait <= 0 {
		t.Fatalf("WriteWait = %v, want > 0", st.WriteWait)
	}
	if st.BytesInFlight != 0 {
		t.Fatalf("BytesInFlight = %d after all calls returned", st.BytesInFlight)
	}
}

func TestPoolStatsAggregatesSlots(t *testing.T) {
	d := newPipeDialer(echoHandler)
	p := newTestPool(t, d, 3)

	const calls = 9
	for i := 0; i < calls; i++ {
		if _, err := p.Call(context.Background(), MethodPredict, []byte("hi")); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Conns != 3 || st.Live != 3 || st.Target != 3 {
		t.Fatalf("stats = %+v, want Conns=3 Live=3 Target=3", st)
	}
	if st.Writes != calls {
		t.Fatalf("Writes = %d, want %d", st.Writes, calls)
	}

	// Kill one connection and block its redial: Live drops below Conns —
	// the degraded-replica signal the admin API surfaces.
	d.setFail(errors.New("no redial"))
	d.kill(0)
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Live != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("Live = %d, want 2", p.Stats().Live)
		}
		time.Sleep(time.Millisecond)
	}
	if st := p.Stats(); st.Conns != 3 {
		t.Fatalf("Conns = %d after loss, want 3", st.Conns)
	}
}

func TestPoolSetTargetRoutesToPrefix(t *testing.T) {
	d := newPipeDialer(echoHandler)
	p := newTestPool(t, d, 3)

	if got := p.SetTarget(0); got != 1 {
		t.Fatalf("SetTarget(0) = %d, want clamp to 1", got)
	}
	if got := p.SetTarget(99); got != 3 {
		t.Fatalf("SetTarget(99) = %d, want clamp to 3", got)
	}

	p.SetTarget(1)
	before := make([]int64, 3)
	for i := range before {
		before[i] = p.slots[i].Load().Stats().Writes
	}
	const calls = 6
	for i := 0; i < calls; i++ {
		if _, err := p.Call(context.Background(), MethodPredict, []byte("hi")); err != nil {
			t.Fatal(err)
		}
	}
	for i := range before {
		got := p.slots[i].Load().Stats().Writes - before[i]
		want := int64(0)
		if i == 0 {
			want = calls
		}
		if got != want {
			t.Fatalf("slot %d served %d writes, want %d", i, got, want)
		}
	}

	// Growing the target back is instant: the parked connections never
	// closed, so no redial happened.
	dialed := d.dialed()
	p.SetTarget(3)
	for i := 0; i < calls; i++ {
		if _, err := p.Call(context.Background(), MethodPredict, []byte("hi")); err != nil {
			t.Fatal(err)
		}
	}
	if d.dialed() != dialed {
		t.Fatalf("regrow redialed: %d dials, want %d", d.dialed(), dialed)
	}
	for i := range before {
		if p.slots[i].Load().Stats().Writes == before[i] && i != 0 {
			t.Fatalf("slot %d idle after target regrew", i)
		}
	}
}

func TestPoolSpillsPastDeadTarget(t *testing.T) {
	d := newPipeDialer(echoHandler)
	p := newTestPool(t, d, 2)
	p.SetTarget(1)

	// Kill the only in-target connection and block redial: calls must
	// spill to the parked slot rather than fail with ErrNoConns.
	d.setFail(errors.New("no redial"))
	d.kill(0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := p.Call(context.Background(), MethodPredict, []byte("hi")); err == nil {
			break
		} else if !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, io.EOF) && !errors.Is(err, ErrNoConns) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("calls never spilled past the dead target slot")
		}
		time.Sleep(time.Millisecond)
	}
}
