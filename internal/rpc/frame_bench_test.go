package rpc

import (
	"io"
	"testing"
)

// BenchmarkWriteFrame exercises the pooled single-write path (payloads
// that fit the inline buffer) and the writev path (large payloads sent as
// a header/payload pair without copying). Run with -benchmem: both paths
// are allocation-free in steady state.
func BenchmarkWriteFrame(b *testing.B) {
	run := func(b *testing.B, payload []byte) {
		f := &Frame{ID: 7, Type: MsgRequest, Method: MethodPredict, Payload: payload}
		b.SetBytes(int64(headerLen + len(payload)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := WriteFrame(io.Discard, f); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("inline-256B", func(b *testing.B) { run(b, make([]byte, 256)) })
	b.Run("writev-64KB", func(b *testing.B) { run(b, make([]byte, 64<<10)) })
}
