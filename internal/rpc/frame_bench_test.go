package rpc

import (
	"bytes"
	"io"
	"testing"
)

// BenchmarkWriteFrame exercises the pooled single-write path (payloads
// that fit the inline buffer) and the writev path (large payloads sent as
// a header/payload pair without copying). Run with -benchmem: both paths
// are allocation-free in steady state.
func BenchmarkWriteFrame(b *testing.B) {
	run := func(b *testing.B, payload []byte) {
		f := &Frame{ID: 7, Type: MsgRequest, Method: MethodPredict, Payload: payload}
		b.SetBytes(int64(headerLen + len(payload)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := WriteFrame(io.Discard, f); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("inline-256B", func(b *testing.B) { run(b, make([]byte, 256)) })
	b.Run("writev-64KB", func(b *testing.B) { run(b, make([]byte, 64<<10)) })
}

// BenchmarkReadFrame measures the read side under the leased-payload
// contract (each frame Released after reading, as the client and server
// loops do): with the length-prefix scratch, the body pools, and the
// frame pool all warm, both paths are allocation-free in steady state.
func BenchmarkReadFrame(b *testing.B) {
	run := func(b *testing.B, payload []byte) {
		var buf bytes.Buffer
		f := &Frame{ID: 7, Type: MsgRequest, Method: MethodPredict, Payload: payload}
		if err := WriteFrame(&buf, f); err != nil {
			b.Fatal(err)
		}
		wire := buf.Bytes()
		b.SetBytes(int64(len(wire)))
		b.ReportAllocs()
		b.ResetTimer()
		r := bytes.NewReader(wire)
		for i := 0; i < b.N; i++ {
			r.Reset(wire)
			g, err := ReadFrame(r)
			if err != nil {
				b.Fatal(err)
			}
			g.Release()
		}
	}
	b.Run("inline-256B", func(b *testing.B) { run(b, make([]byte, 256)) })
	b.Run("large-64KB", func(b *testing.B) { run(b, make([]byte, 64<<10)) })
}
