package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// The response-direction lease contract: every scratch buffer the server
// leases for a handler is recycled exactly once, after the response frame
// is written — including when the write fails or the caller has already
// abandoned the call. activeRespBufs is the counter these tests drain
// back to baseline; run with -race they also catch a recycled buffer
// still being written through.

// waitRespBufsSettle waits until the leased response-body count returns
// to base.
func waitRespBufsSettle(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := activeRespBufs.Load(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("response bufs never drained: %d active, baseline %d", activeRespBufs.Load(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPutRespBufRetentionCap: the response pool obeys the 1 MiB retention
// rule, and refuses degenerate tiny buffers (e.g. a handler returning a
// static slice) that would poison the pool with useless capacity.
func TestPutRespBufRetentionCap(t *testing.T) {
	cases := []struct {
		capacity int
		want     bool
	}{
		{4096, true},
		{maxPooledRespBuf, true},
		{maxPooledRespBuf + 1, false},
		{511, false},
		{4, false},
	}
	for _, c := range cases {
		b := make([]byte, 0, c.capacity)
		activeRespBufs.Add(1) // pair the decrement inside putRespBuf
		if got := putRespBuf(&b); got != c.want {
			t.Fatalf("putRespBuf(cap %d) = %v, want %v", c.capacity, got, c.want)
		}
	}
}

// failWriteConn fails every write, simulating a connection that dies
// between reading a request and writing its response.
type failWriteConn struct {
	io.ReadWriteCloser
}

func (c failWriteConn) Write(p []byte) (int, error) {
	return 0, errors.New("wire broke")
}

// TestServerWriteFailureRecyclesLeases: a failed response write must
// still end both server-side leases — the request frame's body and the
// response scratch — or a flapping connection leaks both pools dry.
func TestServerWriteFailureRecyclesLeases(t *testing.T) {
	leaseBase := activeLeases.Load()
	respBase := activeRespBufs.Load()
	cli, srvEnd := net.Pipe()
	srv := NewServer(echoHandler)
	go srv.ServeConn(failWriteConn{srvEnd})
	defer srv.Close()
	c := NewClient(cli)
	defer c.Close()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		if _, err := c.Call(ctx, MethodPredict, []byte("abc")); err == nil {
			t.Fatal("call succeeded across a write-dead wire")
		}
		cancel()
	}
	waitRespBufsSettle(t, respBase)
	waitLeasesSettle(t, leaseBase)
}

// TestCancelledCallerRecyclesLeases: a caller that abandons its call
// before the handler finishes must not strand the server's response
// scratch or the response frame — the scratch recycles after the write,
// and the unclaimed response is released by the client's read loop.
func TestCancelledCallerRecyclesLeases(t *testing.T) {
	leaseBase := activeLeases.Load()
	respBase := activeRespBufs.Load()
	release := make(chan struct{})
	addr, stop := startServer(t, func(_ Method, p, scratch []byte) ([]byte, error) {
		<-release
		return append(scratch, p...), nil
	})
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const calls = 4
	for i := 0; i < calls; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		if _, err := c.Call(ctx, MethodPredict, []byte("late")); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want deadline exceeded", err)
		}
		cancel()
	}
	close(release) // now let the server answer every abandoned call
	waitRespBufsSettle(t, respBase)
	waitLeasesSettle(t, leaseBase)
}
