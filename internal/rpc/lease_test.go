package rpc

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// The leased-payload contract: every frame ReadFrame hands out is
// released exactly once — by the caller at its documented release point,
// by the read loop for responses nobody is waiting for, or by the
// cancelled caller's drain when the response raced its cancellation. The
// tests below assert the lease count always drains back to its baseline
// (absolute zero would be fragile: earlier tests may legitimately leak
// frames they never release, e.g. the random-bytes fuzz probes).

// waitLeasesSettle waits until the active lease count returns to base.
func waitLeasesSettle(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := activeLeases.Load(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leases never drained: %d active, baseline %d", activeLeases.Load(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCallReleaseDrainsLease(t *testing.T) {
	base := activeLeases.Load()
	addr, stop := startServer(t, echoHandler)
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		resp, err := c.Call(context.Background(), MethodPredict, []byte("abc"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}
	waitLeasesSettle(t, base)
}

// TestErrorAndPingResponsesReleased: Call releases MsgError frames
// internally, and Ping releases its pong — neither hands a lease to the
// caller.
func TestErrorAndPingResponsesReleased(t *testing.T) {
	base := activeLeases.Load()
	addr, stop := startServer(t, echoHandler) // MethodInfo → error reply
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		if _, err := c.Call(context.Background(), MethodInfo, nil); err == nil {
			t.Fatal("expected remote error")
		}
		if err := c.Ping(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	waitLeasesSettle(t, base)
}

// TestCancelledCallLateResponseReleased is the lease-path regression the
// pooling demands: a Call abandoned by ctx cancellation whose response
// arrives afterwards must still release the frame body — via the read
// loop (no pending entry) or the caller's drain (response raced the
// cancellation under mu) — or the body pool is corrupted/leaked.
func TestCancelledCallLateResponseReleased(t *testing.T) {
	base := activeLeases.Load()
	release := make(chan struct{})
	addr, stop := startServer(t, func(m Method, p, scratch []byte) ([]byte, error) {
		<-release
		return bytes.Repeat([]byte("r"), 1024), nil
	})
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const calls = 8
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := c.Call(ctx, MethodPredict, []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v, want deadline exceeded", err)
			}
		}()
	}
	wg.Wait()      // every call abandoned
	close(release) // now let the server answer all of them
	waitLeasesSettle(t, base)
}

// TestLeaseStressCancellationRace hammers the cancel-vs-response race
// under the race detector: concurrent callers with tiny random deadlines
// against a jittery echo server. Pool corruption (a double-released body
// handed to two readers) shows up as a data race on the shared body
// buffer; leaks show up as a lease count that never settles.
func TestLeaseStressCancellationRace(t *testing.T) {
	base := activeLeases.Load()
	addr, stop := startServer(t, func(m Method, p, scratch []byte) ([]byte, error) {
		if len(p) > 0 && p[0]&1 == 0 {
			time.Sleep(time.Duration(p[0]%8) * 100 * time.Microsecond)
		}
		return append(scratch, p...), nil
	})
	defer stop()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			msg := make([]byte, 256)
			for i := 0; i < 200; i++ {
				msg[0] = byte(rng.Intn(256))
				for j := 1; j < len(msg); j++ {
					msg[j] = byte(g)
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(500)+1)*time.Microsecond)
				resp, err := c.Call(ctx, MethodPredict, msg)
				if err == nil {
					if !bytes.Equal(resp.Data, msg) {
						t.Errorf("cross-talk: got %q sent %q", resp.Data[:8], msg[:8])
					}
					resp.Release()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	c.Close()
	waitLeasesSettle(t, base)
}

// TestReleaseSafety: Release must be a no-op on zero Payloads, nil
// frames, and caller-constructed (never leased) frames.
func TestReleaseSafety(t *testing.T) {
	var p Payload
	p.Release() // zero payload
	var f *Frame
	f.Release() // nil frame
	own := &Frame{ID: 1, Type: MsgRequest, Payload: []byte("x")}
	own.Release() // never leased: no pool interaction
	if own.ID != 1 {
		t.Fatal("release mutated an unleased frame's identity")
	}
}

// TestServerReleasesOversizedBodies: frames above the 1 MiB pooling cap
// take the unpooled path end to end — they must still round-trip and
// their Release must not poison the pools.
func TestServerReleasesOversizedBodies(t *testing.T) {
	base := activeLeases.Load()
	addr, stop := startServer(t, echoHandler)
	defer stop()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := bytes.Repeat([]byte("b"), maxPooledBody+4096)
	for i := 0; i < 3; i++ {
		resp, err := c.Call(context.Background(), MethodPredict, big)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Data, big) {
			t.Fatal("oversized payload corrupted")
		}
		resp.Release()
	}
	waitLeasesSettle(t, base)
}

// TestBodyPoolClasses pins the size-class arithmetic the pools rely on.
func TestBodyPoolClasses(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{10, 1 << minBodyBits},
		{1 << minBodyBits, 1 << minBodyBits},
		{(1 << minBodyBits) + 1, 1 << (minBodyBits + 1)},
		{4096, 4096},
		{4097, 8192},
		{maxPooledBody, maxPooledBody},
	}
	for _, c := range cases {
		bp := getBody(c.n)
		if bp == nil {
			t.Fatalf("getBody(%d) refused a poolable size", c.n)
		}
		if cap(*bp) < c.n {
			t.Fatalf("getBody(%d) cap = %d", c.n, cap(*bp))
		}
		if cap(*bp) != c.wantCap {
			t.Fatalf("getBody(%d) cap = %d, want class %d", c.n, cap(*bp), c.wantCap)
		}
		putBody(bp)
	}
	if getBody(maxPooledBody+1) != nil {
		t.Fatal("getBody pooled a body above the retention cap")
	}
}
