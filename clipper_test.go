package clipper_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"clipper"
	"clipper/internal/container"
)

// parityModel labels inputs by the parity of their first feature.
type parityModel struct{ name string }

func (m parityModel) Info() clipper.ModelInfo {
	return clipper.ModelInfo{Name: m.name, Version: 1, NumClasses: 2}
}

func (m parityModel) PredictBatch(xs [][]float64) ([]clipper.Prediction, error) {
	out := make([]clipper.Prediction, len(xs))
	for i, x := range xs {
		out[i] = clipper.Prediction{Label: int(x[0]) % 2}
	}
	return out, nil
}

func TestPublicAPIEndToEnd(t *testing.T) {
	cl := clipper.New(clipper.Config{})
	defer cl.Close()

	if _, err := cl.Deploy(parityModel{name: "parity"}, nil,
		clipper.DefaultQueueConfig(20*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	app, err := cl.RegisterApp(clipper.AppConfig{
		Name:   "demo",
		Models: []string{"parity"},
		Policy: clipper.NewExp3(0.1),
		SLO:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := app.Predict(context.Background(), []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Label != 1 {
		t.Fatalf("Label = %d", resp.Label)
	}
	if err := app.Feedback(context.Background(), []float64{7}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRemoteContainer(t *testing.T) {
	addr, stop, err := clipper.ServeContainer(parityModel{name: "remote-parity"}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	remote, err := clipper.DialContainer(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cl := clipper.New(clipper.Config{})
	defer cl.Close()
	if _, err := cl.Deploy(remote, func() { remote.Close() },
		clipper.QueueConfig{Controller: clipper.NewFixedBatch(4)}); err != nil {
		t.Fatal(err)
	}
	app, err := cl.RegisterApp(clipper.AppConfig{
		Name: "demo", Models: []string{"remote-parity"}, Policy: clipper.NewStaticPolicy(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := app.Predict(context.Background(), []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Label != 0 {
		t.Fatalf("Label = %d", resp.Label)
	}
}

func TestPublicAPIControllers(t *testing.T) {
	for _, c := range []clipper.Controller{
		clipper.NewAIMD(clipper.AIMDConfig{SLO: time.Millisecond}),
		clipper.NewQuantileReg(clipper.QuantileRegConfig{SLO: time.Millisecond}),
		clipper.NewFixedBatch(3),
	} {
		if c.MaxBatch() < 1 {
			t.Fatalf("%s MaxBatch = %d", c.Name(), c.MaxBatch())
		}
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	for _, p := range []clipper.Policy{
		clipper.NewExp3(0.1), clipper.NewExp4(0.3), clipper.NewStaticPolicy(0),
	} {
		s := p.Init(3)
		if len(s.Weights) != 3 {
			t.Fatalf("%s Init = %+v", p.Name(), s)
		}
	}
}

func TestPublicAPIStateStore(t *testing.T) {
	s := clipper.NewMemStore()
	defer s.Close()
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
}

func TestPublicAPIMetricsRegistry(t *testing.T) {
	cl := clipper.New(clipper.Config{})
	defer cl.Close()
	if _, err := cl.Deploy(parityModel{name: "parity"}, nil,
		clipper.DefaultQueueConfig(20*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Embedders can add their own families next to the clipper_ ones.
	err := cl.Metrics().Register("myapp_ticks_total", "embedder counter",
		clipper.MetricsCounter, func(dst []clipper.MetricsSeries) []clipper.MetricsSeries {
			return append(dst, clipper.MetricsSeries{
				Labels: []clipper.MetricsLabel{{Name: "source", Value: "test"}},
				Value:  3,
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := cl.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"myapp_ticks_total{source=\"test\"} 3",
		"clipper_queue_queued{model=\"parity\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func ExampleNew() {
	cl := clipper.New(clipper.Config{})
	defer cl.Close()

	cl.Deploy(parityModel{name: "parity"}, nil, clipper.DefaultQueueConfig(20*time.Millisecond))
	app, _ := cl.RegisterApp(clipper.AppConfig{
		Name: "demo", Models: []string{"parity"}, Policy: clipper.NewStaticPolicy(0),
	})
	resp, _ := app.Predict(context.Background(), []float64{3})
	fmt.Println(resp.Label)
	// Output: 1
}

var _ container.Predictor = parityModel{} // the alias and origin interface are identical
