module clipper

go 1.24
