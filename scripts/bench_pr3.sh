#!/usr/bin/env sh
# bench_pr3.sh — record the PR 3 performance trajectory.
#
# Runs the hot-path perf suite (dispatch pipeline throughput, the RPC
# connection pool's InFlight×Conns scaling against a transfer-bound
# simulated container, and the frame/codec allocation counts) and writes
# the JSON report to BENCH_PR3.json at the repo root. The same quantities
# are available as `go test -bench` benchmarks:
#
#   go test -run='^$' -bench='DispatchPipeline|PoolPipeline' ./internal/batching/
#   go test -run='^$' -bench='WriteFrame|ReadFrame|Batch|Predictions' -benchmem \
#       ./internal/rpc/ ./internal/container/
. "$(dirname "$0")/bench_lib.sh"
run_perf BENCH_PR3.json -id pr3-rpc-pool
