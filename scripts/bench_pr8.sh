#!/usr/bin/env sh
# bench_pr8.sh — record the PR 8 performance trajectory.
#
# Runs the hot-path perf suite and writes the JSON report to
# BENCH_PR8.json at the repo root. New in this report, alongside every
# family carried forward from BENCH_PR7.json, is the tenant-fairness
# family: the noisy-neighbor scenario (one Zipf-heavy closed-loop tenant
# against one low-rate latency-sensitive tenant on a shared replica),
# measured three ways —
#
#   - tenant_fairness_solo_p99_ms: the quiet tenant alone — its
#     intrinsic tail latency.
#   - tenant_fairness_fifo_p99_ms: both tenants on the strict-FIFO queue
#     (QoS off): the quiet tenant inherits the heavy backlog
#     (tenant_fairness_fifo_p99_x is its multiple of solo, expected well
#     above 2x).
#   - tenant_fairness_fair_p99_ms: both tenants with multi-tenant QoS on
#     (weighted-DRR batching + SLO admission): the acceptance bound is
#     tenant_fairness_fair_p99_x <= 2x solo while
#     tenant_fairness_heavy_sheds is nonzero and the quiet tenant sheds
#     nothing.
#
# tenant_fairness_quiet_sheds / *_issued record scenario accounting for
# the fair run; they are not gated.
#
# The same scenario runs as an end-to-end test over real sockets in
# internal/integration (TestNoisyNeighborQoS, -tags=integration).
. "$(dirname "$0")/bench_lib.sh"
run_perf BENCH_PR8.json -id pr8-qos -dur "${BENCH_PR8_DUR:-2s}"
check_report BENCH_PR8.json
