# bench_lib.sh — shared plumbing for the bench_pr*.sh recorders and the
# CI bench gate. Source it from a sibling script:
#
#   . "$(dirname "$0")/bench_lib.sh"
#   run_perf BENCH_PRn.json -id prn-title
#
# It pins the strict shell flags, moves to the repo root (so output paths
# land beside the code they measure), and provides run_perf, which runs
# the hot-path perf suite (cmd/bench -perf) with any extra flags passed
# through and echoes where the report landed.
set -eu
cd "$(dirname "$0")/.."

run_perf() {
	out="$1"
	shift
	go run ./cmd/bench -perf "$out" "$@"
	case "$out" in
	/*) echo "wrote $out" ;;
	*) echo "wrote $(pwd)/$out" ;;
	esac
}

# check_report validates a perf report's schema (required measurements
# present, finite, positive) without rerunning anything.
check_report() {
	go run ./cmd/bench -check "$1"
}
