#!/usr/bin/env sh
# bench_gate.sh — the CI bench-JSON gate.
#
# Runs the perf suite at smoke duration, then validates that the emitted
# report and the committed BENCH_PR10.json both carry every required
# measurement with a finite, strictly positive value (cmd/bench -check).
# Earlier BENCH_PR*.json reports are history, not gated: the required
# measurement list grows PR over PR, so only the latest report can
# satisfy it. This is schema sanity, not absolute-performance gating: CI
# runners are single-core and shared, so the gate asserts the
# measurements exist and are non-degenerate, never that they are fast.
. "$(dirname "$0")/bench_lib.sh"

out="${BENCH_GATE_OUT:-/tmp/bench_gate.json}"
run_perf "$out" -id bench-gate-smoke -dur "${BENCH_GATE_DUR:-500ms}"
check_report "$out"
check_report BENCH_PR10.json
echo "bench gate ok"
