#!/usr/bin/env sh
# check_prom.sh — Prometheus exposition gate. Deploys a real serving
# node (remote model container over RPC + demo models + QoS + adaptive
# pipeline sizing), drives a few predictions through the REST API, then
# scrapes GET /metrics and validates the exposition text:
#
#   * every series line parses (metric-name and label-name grammar,
#     quoted/escaped label values, finite or Inf/NaN sample values)
#   * every series is preceded by the # HELP and # TYPE of its family
#     (summary _sum/_count children resolve to the parent family)
#   * no duplicate series (same name + label set twice)
#   * the families each subsystem is expected to export are present
#
# No dependencies beyond POSIX sh + awk + curl-or-wget and the go
# toolchain. Usage: scripts/check_prom.sh
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
MC_PID=""
CL_PID=""
cleanup() {
  [ -n "$CL_PID" ] && kill "$CL_PID" 2>/dev/null || true
  [ -n "$MC_PID" ] && kill "$MC_PID" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fetch() { # fetch URL OUTFILE — curl preferred, wget fallback
  if command -v curl >/dev/null 2>&1; then
    curl -fsS -D "$workdir/headers" -o "$2" "$1"
  else
    wget -q -S -O "$2" "$1" 2>"$workdir/headers"
  fi
}

post() { # post URL BODY OUTFILE
  if command -v curl >/dev/null 2>&1; then
    curl -fsS -X POST -d "$2" -o "$3" "$1"
  else
    wget -q -O "$3" --post-data="$2" "$1"
  fi
}

wait_for_line() { # wait_for_line LOGFILE SED_EXPR — prints first match
  i=0
  while :; do
    addr=$(sed -n "$2" "$1" | head -n 1)
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
      echo "timed out waiting for $1" >&2
      cat "$1" >&2
      return 1
    fi
    sleep 0.2
  done
}

echo "check_prom: building cmd/clipper and cmd/modelcontainer"
go build -o "$workdir/modelcontainer" ./cmd/modelcontainer
go build -o "$workdir/clipper" ./cmd/clipper

# A remote container so the RPC pool families light up; small synthetic
# dataset so training is fast. Seeds/dims must match the serving node.
"$workdir/modelcontainer" -addr 127.0.0.1:0 -train 300 -dim 16 -classes 4 \
  -seed 42 >"$workdir/mc.log" 2>&1 &
MC_PID=$!
mc_addr=$(wait_for_line "$workdir/mc.log" 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p')
echo "check_prom: model container on $mc_addr"

# -qos + -adaptive + -container-conns 2 light the admission, adaptive
# window, and pool telemetry series on top of the always-on families.
"$workdir/clipper" -addr 127.0.0.1:0 -train 300 -dim 16 -classes 4 \
  -slo 50ms -containers "$mc_addr" -container-conns 2 -adaptive \
  -qos -shed-policy degrade >"$workdir/cl.log" 2>&1 &
CL_PID=$!
cl_addr=$(wait_for_line "$workdir/cl.log" 's/.*serving app .* on http:\/\/\([0-9.:]*\) .*/\1/p')
echo "check_prom: serving node on $cl_addr"

input=$(awk 'BEGIN { s = ""; for (i = 0; i < 16; i++) s = s (i ? "," : "") "0.5"; print s }')
for _ in 1 2 3 4 5; do
  post "http://$cl_addr/api/v1/predict" "{\"app\":\"demo\",\"input\":[$input]}" \
    "$workdir/predict.json"
done
grep -q '"label"' "$workdir/predict.json" || {
  echo "FAIL: predict response carries no label:" >&2
  cat "$workdir/predict.json" >&2
  exit 1
}

fetch "http://$cl_addr/metrics" "$workdir/metrics.txt"
grep -qi 'text/plain; version=0.0.4' "$workdir/headers" || {
  echo "FAIL: /metrics content type is not the 0.0.4 exposition format:" >&2
  grep -i 'content-type' "$workdir/headers" >&2 || true
  exit 1
}

# The old human-readable dump must still answer at ?format=text.
fetch "http://$cl_addr/metrics?format=text" "$workdir/metrics_human.txt"
[ -s "$workdir/metrics_human.txt" ] || {
  echo "FAIL: /metrics?format=text returned an empty body" >&2
  exit 1
}

echo "check_prom: validating exposition grammar"
awk '
/^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* / { help[$3] = 1; next }
/^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram|untyped)$/ {
  if ($3 in type) { print "NR" NR ": duplicate TYPE for " $3; bad = 1 }
  type[$3] = $4
  next
}
/^#/ { print "NR" NR ": malformed comment line: " $0; bad = 1; next }
/^$/ { next }
{
  if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/)) {
    print "NR" NR ": illegal metric name: " $0; bad = 1; next
  }
  name = substr($0, 1, RLENGTH)
  rest = substr($0, RLENGTH + 1)
  if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="([^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="([^"\\]|\\.)*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$/)) {
    print "NR" NR ": unparseable series line: " $0; bad = 1; next
  }
  fam = name
  if (!(fam in type)) sub(/_(sum|count|bucket)$/, "", fam)
  if (!(fam in type)) { print "NR" NR ": series without # TYPE: " $0; bad = 1 }
  if (!(fam in help)) { print "NR" NR ": series without # HELP: " $0; bad = 1 }
  id = $0; sub(/ [^ ]*$/, "", id)
  if (id in seen) { print "NR" NR ": duplicate series: " id; bad = 1 }
  seen[id] = 1
  series++
}
END {
  if (series == 0) { print "no series in scrape"; bad = 1 }
  if (bad) exit 1
  print "check_prom: " series " series parse clean"
}
' "$workdir/metrics.txt"

echo "check_prom: checking required families"
status=0
for fam in \
  clipper_cache_hits_total clipper_cache_misses_total clipper_cache_entries \
  clipper_cache_shard_hits_total \
  clipper_queue_queued clipper_queue_in_flight_queries \
  clipper_queue_completed_queries_total \
  clipper_replica_healthy clipper_replica_service_ewma_seconds \
  clipper_batch_size_count clipper_batch_latency_seconds_count \
  clipper_adaptive_window clipper_adaptive_pool_target \
  clipper_pool_conns clipper_pool_live_conns clipper_pool_writes_total \
  clipper_sched_replicas clipper_sched_submitted_total \
  clipper_app_predictions_total clipper_app_qos clipper_app_slo_seconds \
  clipper_tenant_served_total \
  clipper_http_requests_total \
  clipper_gateway_requests_total; do
  grep -q "^$fam" "$workdir/metrics.txt" || {
    echo "FAIL: family $fam missing from live scrape" >&2
    status=1
  }
done
[ "$status" -eq 0 ] || exit 1

# The predictions we sent must be visible in the counters.
grep -q 'clipper_app_predictions_total{app="demo"} [1-9]' "$workdir/metrics.txt" || {
  echo "FAIL: predictions not reflected in clipper_app_predictions_total" >&2
  grep 'clipper_app_predictions_total' "$workdir/metrics.txt" >&2 || true
  exit 1
}

echo "check_prom: OK"
