#!/usr/bin/env sh
# bench_pr6.sh — record the PR 6 performance trajectory.
#
# Runs the hot-path perf suite and writes the JSON report to
# BENCH_PR6.json at the repo root. New in this report, alongside the
# dispatch/pool/adaptive/codec rows carried forward for before/after
# comparison against BENCH_PR5.json:
#
#   - decode_predictions_view_*: the flat response decode
#     (DecodePredictionView into a reused PredictionView), 0 allocs/op
#     at any response size, next to decode_predictions_64x10 (the
#     []Prediction path it bypasses).
#   - append_predictions_reused_64x10: the response encoder into the
#     server's pooled leased scratch — 0 allocs/op in steady state.
#   - loopback_tensor_allocs_per_query: the whole-path allocation bill —
#     per-query allocations across both sides of a loopback
#     ViewPredictor round trip at batch 64. The data plane (bodies,
#     views, scratch, scores, submit-side requests, server request
#     workers) is pooled and contributes zero; what remains is a tiny
#     per-batch constant amortized over the batch.
#   - codec_pipeline_tensor_qps now runs the tensor-native path in both
#     directions (flat collection + ViewPredictor + flat response); the
#     echo container answers with a 10-wide score vector per row so the
#     response direction carries a real tensor, and the rows/tensor pair
#     is measured as best-of-3 interleaved runs so runner drift cannot
#     swamp the ratio.
#
# The same quantities are available as `go test -bench` benchmarks:
#
#   go test -run='^$' -bench='Predictions|ReadFrame|DecodeBatch' -benchmem \
#       ./internal/rpc/ ./internal/container/
. "$(dirname "$0")/bench_lib.sh"
run_perf BENCH_PR6.json -id pr6-tensor-native
check_report BENCH_PR6.json
