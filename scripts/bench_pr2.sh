#!/usr/bin/env sh
# bench_pr2.sh — record the PR 2 performance trajectory.
#
# Runs the hot-path perf suite (dispatch pipeline throughput at InFlight
# 1 vs 4, frame-write and codec allocation counts) and writes the JSON
# report to BENCH_PR2.json at the repo root. The same quantities are
# available as `go test -bench` benchmarks:
#
#   go test -run='^$' -bench=BenchmarkDispatchPipeline ./internal/batching/
#   go test -run='^$' -bench='WriteFrame|Batch|Predictions' -benchmem \
#       ./internal/rpc/ ./internal/container/
. "$(dirname "$0")/bench_lib.sh"
run_perf BENCH_PR2.json -id pr2-pipeline
