#!/usr/bin/env sh
# bench_pr4.sh — record the PR 4 performance trajectory.
#
# Runs the hot-path perf suite — dispatch pipeline throughput, the static
# InFlight×Conns pool matrix, and the adaptive InFlight/Conns control
# loop's convergence against transfer-bound and compute-bound simulated
# containers — and writes the JSON report to BENCH_PR4.json at the repo
# root. The adaptive rows record the controller's final operating point
# (adaptive_*_final_inflight / _final_conns) and adaptive_vs_static_best
# compares its throughput against the best hand-tuned static setting
# measured in the same run. The same quantities are available as
# `go test -bench` benchmarks:
#
#   go test -run='^$' -bench='DispatchPipeline|PoolPipeline|AdaptivePipeline' \
#       ./internal/batching/
. "$(dirname "$0")/bench_lib.sh"
run_perf BENCH_PR4.json -id pr4-adaptive
check_report BENCH_PR4.json
