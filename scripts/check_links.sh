#!/usr/bin/env sh
# check_links.sh — verify that every relative markdown link in the repo's
# documentation points at a file or directory that exists. External links
# (http/https) and pure anchors are skipped; anchors and optional link
# titles ([text](target "Title")) are stripped before checking. No
# dependencies beyond POSIX sh + grep/sed.
#
# Usage: scripts/check_links.sh [files...]   (default: all *.md)
set -eu
cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
  files="$*"
else
  files=$(find . -name '*.md' -not -path './.git/*' | sort)
fi

status=0
for f in $files; do
  dir=$(dirname "$f")
  # Extract inline markdown link targets, dropping any trailing "Title".
  links=$(grep -o '\[[^]]*\]([^)]*)' "$f" 2>/dev/null |
    sed -e 's/.*](\([^)]*\))/\1/' -e 's/ *"[^"]*" *$//') || true
  [ -n "$links" ] || continue
  # Iterate line-by-line in the current shell (no pipe subshell) so that
  # targets containing spaces stay intact and $status propagates.
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
    http://* | https://* | mailto:* | \#*) continue ;;
    esac
    target=${link%%#*} # strip anchor
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN: $f -> $link" >&2
      status=1
    fi
  done <<EOF
$links
EOF
done
if [ "$status" -ne 0 ]; then
  echo "markdown link check failed" >&2
else
  echo "markdown link check OK"
fi
exit $status
