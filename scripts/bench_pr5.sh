#!/usr/bin/env sh
# bench_pr5.sh — record the PR 5 performance trajectory.
#
# Runs the hot-path perf suite and writes the JSON report to
# BENCH_PR5.json at the repo root. New in this report, alongside the
# dispatch/pool/adaptive rows carried forward for before/after
# comparison against BENCH_PR4.json:
#
#   - read_frame_*: now 0 allocs/op — the read side honors the
#     leased-payload release contract (pooled frame bodies released at
#     explicit points past the codec).
#   - decode_batch_view_*: the zero-copy tensor decode (DecodeBatchView
#     into a reused BatchView), 0 allocs/op at any batch size, next to
#     decode_batch_64x128 (the [][]float64 path it bypasses).
#   - codec_pipeline_{rows,tensor}_qps: end-to-end pipeline throughput
#     over a free loopback container, decoded as rows vs as a flat
#     tensor — the serialization share of serving cost (paper Fig. 11).
#
# The same quantities are available as `go test -bench` benchmarks:
#
#   go test -run='^$' -bench='ReadFrame|DecodeBatch' -benchmem \
#       ./internal/rpc/ ./internal/container/
. "$(dirname "$0")/bench_lib.sh"
run_perf BENCH_PR5.json -id pr5-zerocopy
check_report BENCH_PR5.json
