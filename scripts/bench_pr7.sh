#!/usr/bin/env sh
# bench_pr7.sh — record the PR 7 performance trajectory.
#
# Runs the hot-path perf suite and writes the JSON report to
# BENCH_PR7.json at the repo root. New in this report, alongside the
# dispatch/pool/adaptive/codec rows carried forward for before/after
# comparison against BENCH_PR6.json, is the scheduler-skew family: a
# 4-replica fleet with one replica 15x slower, dispatched three ways —
#
#   - sched_skew_rr_*: blind round-robin, which routes ~1/4 of queries
#     into the straggler's queue and inherits its service time as the
#     fleet p99 (sched_skew_rr_p99_x >= 3x the all-healthy baseline).
#   - sched_skew_jsq_*: join-shortest-queue cost routing, which starves
#     the straggler down to exploration-probe traffic.
#   - sched_skew_hedge_*: JSQ plus straggler hedging, which rescues the
#     probes that still land on the slow replica
#     (sched_skew_hedge_p99_x stays near 1x baseline; the acceptance
#     bound is <= 1.5x where round-robin is >= 3x).
#
# sched_skew_hedges_issued/won record hedge activity for the run; they
# are not gated (at smoke durations hedges can legitimately be zero).
#
# The same scenario runs as an end-to-end test over real sockets in
# internal/integration (TestSkewedReplicaHedgedTail).
. "$(dirname "$0")/bench_lib.sh"
run_perf BENCH_PR7.json -id pr7-scheduler -dur "${BENCH_PR7_DUR:-2s}"
check_report BENCH_PR7.json
