#!/usr/bin/env sh
# bench_pr10.sh — record the PR 10 performance trajectory.
#
# Runs the hot-path perf suite and writes the JSON report to
# BENCH_PR10.json at the repo root. New in this report, alongside every
# family carried forward from BENCH_PR8.json, is the open-loop adapter
# family: the same gateway core behind real loopback listeners, measured
# through two protocol adapters at the same fixed offered rate
# (workload.MeasureOpenLoop, Poisson arrivals over a Zipf-popular
# cache-warm user population) —
#
#   - openloop_http_p99_ms / openloop_http_qps: tail latency and served
#     rate through the HTTP JSON adapter (keep-alive connection pool).
#   - openloop_binrpc_p99_ms / openloop_binrpc_qps: the same load
#     through the binary-RPC adapter on one pipelined connection.
#   - openloop_adapter_overhead_x: HTTP p99 over binrpc p99 — what the
#     JSON/HTTP wire costs relative to length-prefixed binary frames.
#
# The node is cache-warm and the model ~free, so the tails are
# transport + adapter cost, not serving cost. The same surface runs end
# to end (all three adapters incl. stream, real process, loadgen) in
# scripts/check_adapters.sh.
. "$(dirname "$0")/bench_lib.sh"
run_perf BENCH_PR10.json -id pr10-openloop -dur "${BENCH_PR10_DUR:-2s}"
check_report BENCH_PR10.json
