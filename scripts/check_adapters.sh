#!/usr/bin/env sh
# check_adapters.sh — protocol-adapter integration gate. Boots one
# serving node with all three adapters (HTTP JSON, binrpc, stream) on
# ephemeral ports, then drives an open-loop loadgen smoke against each.
# All three speak to the same gateway core, so the gate proves the
# multi-protocol surface end to end: every adapter must complete
# predictions with zero errors at a modest offered rate.
#
# No dependencies beyond POSIX sh + the go toolchain.
# Usage: scripts/check_adapters.sh
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
CL_PID=""
cleanup() {
  [ -n "$CL_PID" ] && kill "$CL_PID" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

wait_for_line() { # wait_for_line LOGFILE SED_EXPR — prints first match
  i=0
  while :; do
    addr=$(sed -n "$2" "$1" | head -n 1)
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
      echo "timed out waiting for $1" >&2
      cat "$1" >&2
      return 1
    fi
    sleep 0.2
  done
}

echo "check_adapters: building cmd/clipper and cmd/loadgen"
go build -o "$workdir/clipper" ./cmd/clipper
go build -o "$workdir/loadgen" ./cmd/loadgen

# One node, three listeners, one gateway core. Small synthetic dataset
# so training is fast.
"$workdir/clipper" -addr 127.0.0.1:0 \
  -listen-binrpc 127.0.0.1:0 -listen-stream 127.0.0.1:0 \
  -train 300 -dim 16 -classes 4 -slo 50ms >"$workdir/cl.log" 2>&1 &
CL_PID=$!
http_addr=$(wait_for_line "$workdir/cl.log" 's/.*serving app .* on http:\/\/\([0-9.:]*\) .*/\1/p')
binrpc_addr=$(wait_for_line "$workdir/cl.log" 's/.*binrpc adapter on \([0-9.:]*\).*/\1/p')
stream_addr=$(wait_for_line "$workdir/cl.log" 's/.*stream adapter on \([0-9.:]*\).*/\1/p')
echo "check_adapters: http=$http_addr binrpc=$binrpc_addr stream=$stream_addr"

smoke() { # smoke PROTO TARGET — open-loop run; zero errors required
  proto="$1"
  target="$2"
  "$workdir/loadgen" -proto "$proto" -target "$target" -app demo -dim 16 \
    -rate "${ADAPTER_SMOKE_RATE:-100}" -duration "${ADAPTER_SMOKE_DUR:-2s}" \
    -users 32 >"$workdir/$proto.out" 2>&1 || {
    echo "FAIL: loadgen against $proto adapter exited nonzero:" >&2
    cat "$workdir/$proto.out" >&2
    return 1
  }
  cat "$workdir/$proto.out"
  grep -q ' errors=0 ' "$workdir/$proto.out" || {
    echo "FAIL: $proto adapter smoke saw errors" >&2
    return 1
  }
  completed=$(sed -n 's/.*completed=\([0-9]*\).*/\1/p' "$workdir/$proto.out" | head -n 1)
  [ -n "$completed" ] && [ "$completed" -gt 0 ] || {
    echo "FAIL: $proto adapter completed no predictions" >&2
    return 1
  }
  echo "check_adapters: $proto ok ($completed completed)"
}

smoke http "http://$http_addr"
smoke binrpc "$binrpc_addr"
smoke stream "$stream_addr"

echo "check_adapters: OK"
