// Package clipper is a Go implementation of Clipper, the low-latency
// online prediction serving system of Crankshaw et al. (NSDI 2017).
//
// Clipper interposes between applications and machine-learning models. Its
// model abstraction layer provides a prediction cache, adaptive batching
// tuned to a latency SLO with pipelined dispatch (up to
// QueueConfig.InFlight batches concurrently in flight per replica), and a
// uniform batch-prediction RPC to model containers; its model selection
// layer uses bandit algorithms (Exp3, Exp4) over application feedback to
// select and combine models, estimate confidence, mitigate stragglers,
// and personalize selection per context.
//
// # Quickstart
//
//	cl := clipper.New(clipper.Config{})
//	defer cl.Close()
//
//	// Deploy a model (any container.Predictor) behind an adaptive queue.
//	cl.Deploy(myModel, nil, clipper.QueueConfig{
//	    Controller: clipper.NewAIMD(clipper.AIMDConfig{SLO: 20 * time.Millisecond}),
//	})
//
//	// Register an application over it and predict.
//	app, _ := cl.RegisterApp(clipper.AppConfig{
//	    Name: "demo", Models: []string{"my-model"}, Policy: clipper.NewExp3(0.1),
//	})
//	resp, _ := app.Predict(ctx, features)
//
// See examples/ for complete programs and docs/ARCHITECTURE.md for the
// request lifecycle, the wire format, and the tuning knobs.
package clipper

import (
	"time"

	"clipper/internal/batching"
	"clipper/internal/container"
	"clipper/internal/core"
	"clipper/internal/frontend"
	"clipper/internal/metrics"
	"clipper/internal/selection"
	"clipper/internal/statestore"
)

// Core serving types.
type (
	// Clipper is one serving node; see core.Clipper.
	Clipper = core.Clipper
	// Config parameterizes New.
	Config = core.Config
	// AppConfig declares an application.
	AppConfig = core.AppConfig
	// Application is a registered application handle.
	Application = core.Application
	// Response is a prediction answer.
	Response = core.Response
	// CascadeConfig enables two-stage cascade serving (model
	// composition): cheap models answer confident queries, the rest
	// escalate to the full policy.
	CascadeConfig = core.CascadeConfig
	// HealthConfig parameterizes replica health monitoring.
	HealthConfig = core.HealthConfig
	// SchedulerConfig parameterizes cross-replica dispatch:
	// join-shortest-queue cost routing with optional straggler hedging.
	SchedulerConfig = core.SchedulerConfig
	// HedgeConfig parameterizes hedged dispatch (SchedulerConfig.Hedge).
	HedgeConfig = core.HedgeConfig
	// SchedPolicy selects the dispatch strategy (SchedJSQ or
	// SchedRoundRobin).
	SchedPolicy = core.SchedPolicy
	// SchedulerStats is one model's dispatch/hedge counters.
	SchedulerStats = core.SchedulerStats
	// ReplicaStatus is one replica's operational snapshot, including the
	// scheduler's live load estimate.
	ReplicaStatus = core.ReplicaStatus
	// TenantStatus is one tenant's slice of a replica's batch queue
	// (ReplicaStatus.Tenants).
	TenantStatus = core.TenantStatus
	// ShedPolicy selects SLO admission control (AppConfig.Shed):
	// ShedNone, ShedReject, or ShedDegrade.
	ShedPolicy = core.ShedPolicy
	// AppStatus is one application's QoS/serving snapshot.
	AppStatus = core.AppStatus
	// MetricsRegistry is the node's Prometheus exposition registry
	// (Clipper.Metrics): embedders may Register additional families; the
	// REST server scrapes it at GET /metrics.
	MetricsRegistry = metrics.Registry
	// MetricsSeries is one exposed sample within a registered family.
	MetricsSeries = metrics.Series
	// MetricsLabel is one name="value" pair on a series.
	MetricsLabel = metrics.Label
	// MetricsKind is a Prometheus metric type (TYPE line).
	MetricsKind = metrics.Kind
)

// Prometheus metric kinds for MetricsRegistry.Register.
const (
	MetricsCounter = metrics.KindCounter
	MetricsGauge   = metrics.KindGauge
	MetricsSummary = metrics.KindSummary
	MetricsUntyped = metrics.KindUntyped
)

// Scheduler policies.
const (
	// SchedJSQ routes each query to the replica with the lowest estimated
	// completion time (the default).
	SchedJSQ = core.SchedJSQ
	// SchedRoundRobin restores blind rotation across replicas.
	SchedRoundRobin = core.SchedRoundRobin
)

// SLO admission (shed) policies for AppConfig.Shed.
const (
	// ShedNone serves every query best-effort (the default).
	ShedNone = core.ShedNone
	// ShedReject refuses queries predicted to bust the SLO with
	// ErrSLOShed.
	ShedReject = core.ShedReject
	// ShedDegrade answers them from stale cache entries or the default
	// label without querying any model.
	ShedDegrade = core.ShedDegrade
)

// ErrSLOShed is returned under ShedReject when the admission gate
// predicts a query cannot complete within the application's SLO.
var ErrSLOShed = core.ErrSLOShed

// Model container types.
type (
	// Predictor is the uniform batch-prediction interface models
	// implement (paper Listing 1).
	Predictor = container.Predictor
	// Prediction is one model output.
	Prediction = container.Prediction
	// ModelInfo describes a deployed model.
	ModelInfo = container.Info
)

// Batching types.
type (
	// QueueConfig parameterizes a replica's batching queue.
	QueueConfig = batching.QueueConfig
	// Controller chooses batch sizes.
	Controller = batching.Controller
	// AIMDConfig parameterizes NewAIMD.
	AIMDConfig = batching.AIMDConfig
	// QuantileRegConfig parameterizes NewQuantileReg.
	QuantileRegConfig = batching.QuantileRegConfig
	// Adaptive sizes the dispatch pipeline window and the replica's RPC
	// connection pool target at runtime (one instance per deploy).
	Adaptive = batching.Adaptive
	// AdaptiveConfig parameterizes NewAdaptive.
	AdaptiveConfig = batching.AdaptiveConfig
)

// Selection types.
type (
	// Policy is the model selection policy interface (paper Listing 2).
	Policy = selection.Policy
	// SelectionState is a policy's explicit, serializable state.
	SelectionState = selection.State
)

// Store is the per-context selection-state store interface.
type Store = statestore.Store

// RESTServer is the application-facing HTTP API server.
type RESTServer = frontend.Server

// New returns a Clipper serving node.
func New(cfg Config) *Clipper { return core.New(cfg) }

// ParseSchedPolicy parses a dispatch policy name ("jsq", "rr",
// "round-robin") for Config.Scheduler.Policy.
func ParseSchedPolicy(s string) (SchedPolicy, error) { return core.ParseSchedPolicy(s) }

// ParseShedPolicy parses a shed policy name ("none", "reject",
// "degrade") for AppConfig.Shed.
func ParseShedPolicy(s string) (ShedPolicy, error) { return core.ParseShedPolicy(s) }

// NewAIMD returns Clipper's default adaptive batch-size controller.
func NewAIMD(cfg AIMDConfig) Controller { return batching.NewAIMD(cfg) }

// NewQuantileReg returns the quantile-regression batch-size controller.
func NewQuantileReg(cfg QuantileRegConfig) Controller { return batching.NewQuantileReg(cfg) }

// NewFixedBatch returns a static batch-size controller (1 = no batching).
func NewFixedBatch(n int) Controller { return batching.NewFixed(n) }

// NewAdaptive returns a controller that sizes a replica's pipeline window
// (QueueConfig.InFlight) and RPC pool target at runtime from observed
// batch latency, throughput, and pool write-queue telemetry, the same way
// AIMD sizes batches. Set it as QueueConfig.Adaptive; Deploy attaches the
// replica's connection pool automatically. See docs/ARCHITECTURE.md.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive { return batching.NewAdaptive(cfg) }

// AdaptiveQueueConfig is DefaultQueueConfig with the pipeline window and
// pool target adaptive rather than pinned: maxInFlight and the deploy's
// conns bound what the controller may use.
func AdaptiveQueueConfig(slo time.Duration, maxInFlight int) QueueConfig {
	return QueueConfig{
		Controller: NewAIMD(AIMDConfig{SLO: slo}),
		Adaptive:   NewAdaptive(AdaptiveConfig{MaxInFlight: maxInFlight}),
	}
}

// NewExp3 returns the single-model bandit selection policy (paper §5.1).
func NewExp3(eta float64) Policy { return selection.NewExp3(eta) }

// NewExp4 returns the ensemble bandit selection policy (paper §5.2).
func NewExp4(eta float64) Policy { return selection.NewExp4(eta) }

// NewStaticPolicy returns a policy pinned to one model index.
func NewStaticPolicy(i int) Policy { return selection.NewStatic(i) }

// NewExp3Decayed returns Exp3 with forgetting: weight mass decays toward
// uniform so the policy recovers from model-quality flips in bounded time
// (non-stationary workloads / concept drift).
func NewExp3Decayed(eta, gamma float64) Policy { return selection.NewExp3Decayed(eta, gamma) }

// NewUCB1 returns the UCB1 single-model selection policy, a
// stochastic-bandit alternative to Exp3 that converges faster on
// stationary workloads.
func NewUCB1() Policy { return selection.NewUCB1() }

// NewThompson returns the Thompson-sampling single-model selection policy.
func NewThompson() Policy { return selection.NewThompson() }

// NewEpsilonGreedy returns an epsilon-greedy single-model selection policy.
func NewEpsilonGreedy(epsilon, alpha float64) Policy {
	return selection.NewEpsilonGreedy(epsilon, alpha)
}

// NewMemStore returns an in-memory selection-state store.
func NewMemStore() Store { return statestore.NewMemStore() }

// OpenFileStore returns a durable selection-state store backed by an
// append-only log at path, so per-context personalization survives
// restarts.
func OpenFileStore(path string) (Store, error) { return statestore.OpenFileStore(path) }

// DialStateStore connects to a remote statestore server (the Redis
// substitute).
func DialStateStore(addr string, timeout time.Duration) (Store, error) {
	return statestore.DialStore(addr, timeout)
}

// NewRESTServer returns the REST API frontend over a Clipper node.
func NewRESTServer(cl *Clipper) *RESTServer { return frontend.NewServer(cl) }

// ServeContainer hosts a Predictor as a standalone RPC model container on
// addr (":0" picks a port) and returns the bound address and a shutdown
// function. Run it in the model's own process for Docker-like isolation.
func ServeContainer(p Predictor, addr string) (string, func() error, error) {
	bound, srv, err := container.Serve(p, addr)
	if err != nil {
		return "", nil, err
	}
	return bound, srv.Close, nil
}

// DialContainer connects to a remote model container; the result is a
// Predictor deployable with (*Clipper).Deploy.
func DialContainer(addr string, timeout time.Duration) (*container.Remote, error) {
	return container.Dial(addr, timeout)
}

// DialContainerPool is DialContainer with a per-replica RPC connection
// pool: conns connections to the container, batch frames round-robined
// across them, lost connections redialed with backoff. conns <= 1 is
// exactly DialContainer. See docs/ARCHITECTURE.md for when pooling pays.
func DialContainerPool(addr string, timeout time.Duration, conns int) (*container.Remote, error) {
	return container.DialConns(addr, timeout, conns)
}

// DefaultQueueConfig returns an adaptive AIMD queue tuned to the given
// latency SLO — the deployment most users want. The dispatch pipeline
// window is left at its default (batching.DefaultInFlight concurrent
// batches per replica); set QueueConfig.InFlight to 1 for the serial
// one-batch-at-a-time dispatcher.
func DefaultQueueConfig(slo time.Duration) QueueConfig {
	return QueueConfig{Controller: NewAIMD(AIMDConfig{SLO: slo})}
}
