// Command statestore runs the standalone selection-state store — the
// deployment role Redis fills in the paper (§5.3). Clipper nodes connect
// with clipper.DialStateStore and keep per-context selection state here so
// it survives node restarts and is shared across nodes.
//
// Usage:
//
//	statestore -addr :6379 -file /var/lib/clipper/state.log
//
// With -file the store is backed by an append-only log and survives
// process restarts, including crashes mid-append (the torn tail is
// truncated at the last complete record on reopen). Without it, state
// lives in memory only.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"clipper/internal/statestore"
)

func main() {
	addr := flag.String("addr", ":6379", "listen address")
	file := flag.String("file", "", "append-only log path for durable state (empty = in-memory)")
	flag.Parse()

	var store statestore.Store = statestore.NewMemStore()
	if *file != "" {
		fs, err := statestore.OpenFileStore(*file)
		if err != nil {
			log.Fatalf("opening %s: %v", *file, err)
		}
		defer fs.Close()
		if torn := fs.TornTail(); torn > 0 {
			log.Printf("recovered %s: discarded %d-byte torn tail from an unclean shutdown", *file, torn)
		}
		log.Printf("durable state log %s (%d keys)", *file, fs.Len())
		store = fs
	}

	srv := statestore.NewServer(store)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	defer srv.Close()
	log.Printf("state store serving on %s", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
}
