// Command statestore runs the standalone selection-state store — the
// deployment role Redis fills in the paper (§5.3). Clipper nodes connect
// with clipper.DialStateStore and keep per-context selection state here so
// it survives node restarts and is shared across nodes.
//
// Usage:
//
//	statestore -addr :6379
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"clipper/internal/statestore"
)

func main() {
	addr := flag.String("addr", ":6379", "listen address")
	flag.Parse()

	srv := statestore.NewServer(statestore.NewMemStore())
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	defer srv.Close()
	log.Printf("state store serving on %s", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
}
