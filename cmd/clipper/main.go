// Command clipper starts a Clipper serving node with a demonstration
// deployment: several models trained on a synthetic object-recognition
// task, an Exp4 ensemble application, and the protocol adapters.
//
// Usage:
//
//	clipper -addr :8080 -slo 20ms
//	clipper -addr :8080 -listen-binrpc :7000 -listen-stream :7001
//
// Then:
//
//	curl -s localhost:8080/api/v1/apps
//	curl -s -X POST localhost:8080/api/v1/predict \
//	    -d '{"app":"demo","input":[0.1, ... 64 floats ...]}'
//	loadgen -proto binrpc -target localhost:7000 -rate 500
//
// All listeners serve the same gateway core: an app registered over one
// protocol is immediately served on the others.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clipper"
	"clipper/internal/adapter/binrpc"
	"clipper/internal/adapter/httpjson"
	"clipper/internal/adapter/stream"
	"clipper/internal/dataset"
	"clipper/internal/frameworks"
	"clipper/internal/gateway"
	"clipper/internal/models"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "REST API listen address")
		httpAddr    = flag.String("listen-http", "", "REST API listen address (overrides -addr when set)")
		binrpcAddr  = flag.String("listen-binrpc", "", "binary-RPC adapter listen address (empty disables)")
		streamAddr  = flag.String("listen-stream", "", "streaming adapter listen address (empty disables)")
		slo         = flag.Duration("slo", 20*time.Millisecond, "prediction latency SLO")
		trainN      = flag.Int("train", 2000, "synthetic training examples")
		dim         = flag.Int("dim", 64, "feature dimensionality")
		classes     = flag.Int("classes", 10, "number of classes")
		containers  = flag.String("containers", "", "comma-separated remote model container addresses to deploy")
		conns       = flag.Int("container-conns", 1, "RPC connections pooled per remote container (1 = single connection; the upper bound with -adaptive)")
		adaptive    = flag.Bool("adaptive", false, "size each remote container's pipeline window and connection target at runtime instead of pinning them")
		maxWindow   = flag.Int("max-in-flight", 16, "adaptive pipeline window upper bound (with -adaptive)")
		storeAddr   = flag.String("store", "", "remote statestore address (empty = in-memory)")
		statePath   = flag.String("state-file", "", "durable local state file (ignored when -store is set)")
		noDemo      = flag.Bool("no-demo", false, "skip training/deploying the demo models")
		health      = flag.Duration("health-interval", time.Second, "replica health probe interval (0 disables)")
		schedName   = flag.String("sched", "jsq", "cross-replica dispatch policy: jsq (load-aware) or rr (round-robin)")
		hedge       = flag.Bool("hedge", false, "hedge straggling requests onto the fastest sibling replica")
		hedgeBudget = flag.Float64("hedge-budget", 0.1, "max hedges as a fraction of offered load (with -hedge)")
		hedgeQuant  = flag.Float64("hedge-quantile", 0.9, "per-replica latency quantile deriving the hedge delay (with -hedge)")
		qos         = flag.Bool("qos", false, "opt the demo app into multi-tenant QoS: tenant-tagged fair batching plus SLO admission control")
		weight      = flag.Int("weight", 1, "demo app fair-batching weight (with -qos)")
		shedName    = flag.String("shed-policy", "reject", "SLO admission policy with -qos: none, reject, or degrade")
	)
	flag.Parse()

	policy, err := clipper.ParseSchedPolicy(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	shed, err := clipper.ParseShedPolicy(*shedName)
	if err != nil {
		log.Fatal(err)
	}

	// Selection-state store: remote (the Redis role), durable file, or
	// in-memory.
	var store clipper.Store
	switch {
	case *storeAddr != "":
		s, err := clipper.DialStateStore(*storeAddr, 5*time.Second)
		if err != nil {
			log.Fatalf("dialing state store %s: %v", *storeAddr, err)
		}
		store = s
		log.Printf("using remote state store at %s", *storeAddr)
	case *statePath != "":
		s, err := clipper.OpenFileStore(*statePath)
		if err != nil {
			log.Fatalf("opening state file %s: %v", *statePath, err)
		}
		store = s
		log.Printf("using durable state file %s", *statePath)
	}

	cl := clipper.New(clipper.Config{Store: store, Scheduler: clipper.SchedulerConfig{
		Policy: policy,
		Hedge: clipper.HedgeConfig{
			Enabled:    *hedge,
			BudgetFrac: *hedgeBudget,
			Quantile:   *hedgeQuant,
		},
	}})
	defer cl.Close()

	var names []string
	if !*noDemo {
		log.Printf("training demonstration models (n=%d dim=%d classes=%d)...", *trainN, *dim, *classes)
		ds := dataset.Gaussian(dataset.GaussianConfig{
			Name: "demo", N: *trainN, Dim: *dim, NumClasses: *classes,
			Separation: 3.0, Noise: 1.0, LabelNoise: 0.03, Seed: 42,
		})
		train, test := ds.Split(0.8, 7)

		type deployment struct {
			model   models.Model
			profile frameworks.Profile
		}
		deployments := []deployment{
			{models.TrainLinearSVM("linear-svm", train, models.DefaultLinearConfig()), frameworks.SKLearnLinearSVM()},
			{models.TrainLogisticRegression("log-regression", train, models.DefaultLinearConfig()), frameworks.SKLearnLogisticRegression()},
			{models.TrainRandomForest("random-forest", train, models.DefaultTreeConfig()), frameworks.SKLearnRandomForest()},
		}
		for i, d := range deployments {
			pred := frameworks.NewSimPredictor(d.model, d.profile, *dim, int64(i+1))
			if _, err := cl.Deploy(pred, nil, clipper.DefaultQueueConfig(*slo)); err != nil {
				log.Fatalf("deploy %s: %v", d.model.Name(), err)
			}
			acc := models.Accuracy(d.model, test.X, test.Y)
			log.Printf("deployed %-16s (test accuracy %.3f, profile %s)", d.model.Name(), acc, d.profile.Name)
			names = append(names, d.model.Name())
		}
	}

	// Attach remote model containers (the Docker-style deployment).
	if *containers != "" {
		for _, caddr := range strings.Split(*containers, ",") {
			caddr = strings.TrimSpace(caddr)
			if caddr == "" {
				continue
			}
			remote, err := clipper.DialContainerPool(caddr, 5*time.Second, *conns)
			if err != nil {
				log.Fatalf("dialing container %s: %v", caddr, err)
			}
			qcfg := clipper.DefaultQueueConfig(*slo)
			if *adaptive {
				// Deploy attaches the replica's pool to the controller,
				// closing the Conns loop up to -container-conns.
				qcfg = clipper.AdaptiveQueueConfig(*slo, *maxWindow)
			}
			if _, err := cl.Deploy(remote, func() { remote.Close() }, qcfg); err != nil {
				log.Fatalf("deploying container %s: %v", caddr, err)
			}
			mode := "static"
			if *adaptive {
				mode = "adaptive"
			}
			log.Printf("deployed remote container %s (%s, %d conns, %s)", remote.Info(), caddr, *conns, mode)
			names = append(names, remote.Info().Name)
		}
	}
	if len(names) == 0 {
		log.Fatal("nothing to serve: pass -containers or drop -no-demo")
	}

	appCfg := clipper.AppConfig{
		Name:   "demo",
		Models: names,
		Policy: clipper.NewExp4(0.3),
		SLO:    *slo,
	}
	if *qos {
		appCfg.Weight = *weight
		appCfg.Shed = shed
		log.Printf("QoS on: weight %d, shed policy %s", *weight, shed)
	}
	if _, err := cl.RegisterApp(appCfg); err != nil {
		log.Fatalf("register app: %v", err)
	}

	if *health > 0 {
		mon := cl.StartHealthMonitor(clipper.HealthConfig{Interval: *health})
		defer mon.Stop()
	}

	// One gateway core, up to three protocol adapters over it.
	gw := gateway.New(cl)
	rest := httpjson.New(gw)
	listen := *addr
	if *httpAddr != "" {
		listen = *httpAddr
	}
	bound, err := rest.Listen(listen)
	if err != nil {
		log.Fatalf("listen %s: %v", listen, err)
	}
	defer rest.Close()
	log.Printf("Clipper serving app %q on http://%s (SLO %v)", "demo", bound, *slo)
	log.Printf("Prometheus scrape endpoint: http://%s/metrics (human dump: /metrics?format=text)", bound)
	fmt.Printf("try: curl -s http://%s/api/v1/apps\n", bound)

	type gracefulServer interface {
		Shutdown(context.Context) error
	}
	adapters := []gracefulServer{rest}
	if *binrpcAddr != "" {
		srv := binrpc.New(gw)
		b, err := srv.Listen(*binrpcAddr)
		if err != nil {
			log.Fatalf("listen binrpc %s: %v", *binrpcAddr, err)
		}
		adapters = append(adapters, srv)
		log.Printf("binrpc adapter on %s", b)
	}
	if *streamAddr != "" {
		srv := stream.New(gw)
		b, err := srv.Listen(*streamAddr)
		if err != nil {
			log.Fatalf("listen stream %s: %v", *streamAddr, err)
		}
		adapters = append(adapters, srv)
		log.Printf("stream adapter on %s", b)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down (draining in-flight requests)")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range adapters {
		srv.Shutdown(ctx)
	}
}
