// Command bench runs the paper-reproduction experiments and prints their
// tables and series, or measures the serving hot paths and emits a JSON
// perf report (the PR-over-PR performance trajectory).
//
// Usage:
//
//	bench -experiment all -scale quick
//	bench -experiment fig4 -scale full
//	bench -list
//	bench -perf BENCH_PR10.json -id pr10-openloop
//	bench -check BENCH_PR10.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clipper/internal/experiments"
	"clipper/internal/perf"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		scaleName  = flag.String("scale", "quick", "experiment fidelity: quick or full")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		perfOut    = flag.String("perf", "", "run the hot-path perf suite and write its JSON report to this path ('-' for stdout)")
		perfID     = flag.String("id", "pr10-openloop", "report id recorded in the -perf JSON")
		perfDur    = flag.Duration("dur", 2*time.Second, "duration of each -perf throughput measurement")
		checkPath  = flag.String("check", "", "validate the perf report JSON at this path (schema sanity; the CI bench gate) and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *checkPath != "" {
		f, err := os.Open(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		rep, err := perf.ValidateJSON(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *checkPath, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%s, %d measurements)\n", *checkPath, rep.ID, len(rep.Measurements))
		return
	}

	if *perfOut != "" {
		rep := perf.Run(*perfID, *perfDur)
		out := os.Stdout
		if *perfOut != "-" {
			f, err := os.Create(*perfOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		for _, m := range rep.Measurements {
			fmt.Fprintf(os.Stderr, "%-32s %12.1f %s\n", m.Name, m.Value, m.Unit)
		}
		return
	}

	scale := experiments.Quick
	switch strings.ToLower(*scaleName) {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown scale %q (quick|full)\n", *scaleName)
		os.Exit(2)
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = experiments.IDs()
	}
	failed := false
	for _, id := range ids {
		res, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Print(res)
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
