// Command bench runs the paper-reproduction experiments and prints their
// tables and series.
//
// Usage:
//
//	bench -experiment all -scale quick
//	bench -experiment fig4 -scale full
//	bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clipper/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		scaleName  = flag.String("scale", "quick", "experiment fidelity: quick or full")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	scale := experiments.Quick
	switch strings.ToLower(*scaleName) {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown scale %q (quick|full)\n", *scaleName)
		os.Exit(2)
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = experiments.IDs()
	}
	failed := false
	for _, id := range ids {
		res, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Print(res)
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
