// Command modelcontainer hosts a single model as a standalone RPC model
// container — the process-isolation deployment of paper §4.4 (the role
// Docker plays in the original system). A Clipper node connects to it with
// clipper.DialContainer and deploys the handle like any local model.
//
// The model is trained at startup on a seeded synthetic dataset, so a
// matching Clipper node (same -seed, -dim, -classes) serves consistent
// data.
//
// Usage:
//
//	modelcontainer -addr :7000 -model linear-svm -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"clipper"
	"clipper/internal/dataset"
	"clipper/internal/frameworks"
	"clipper/internal/models"
)

func main() {
	var (
		addr    = flag.String("addr", ":7000", "container RPC listen address")
		model   = flag.String("model", "linear-svm", "model family: linear-svm|log-regression|random-forest|kernel-svm|knn|naive-bayes|mlp|gbdt|noop")
		profile = flag.String("profile", "", "framework latency profile (empty = none): sklearn-linear|sklearn-rf|sklearn-kernel|sklearn-logreg|pyspark|noop|gpu")
		trainN  = flag.Int("train", 2000, "synthetic training examples")
		dim     = flag.Int("dim", 64, "feature dimensionality")
		classes = flag.Int("classes", 10, "number of classes")
		seed    = flag.Int64("seed", 42, "dataset seed (match the serving node)")
	)
	flag.Parse()

	ds := dataset.Gaussian(dataset.GaussianConfig{
		Name: "container-train", N: *trainN, Dim: *dim, NumClasses: *classes,
		Separation: 3.0, Noise: 1.0, LabelNoise: 0.03, Seed: *seed,
	})

	m, err := trainModel(*model, ds)
	if err != nil {
		log.Fatal(err)
	}

	var pred clipper.Predictor
	if p, ok := lookupProfile(*profile); ok {
		pred = frameworks.NewSimPredictor(m, p, *dim, *seed)
	} else if *profile != "" {
		log.Fatalf("unknown profile %q", *profile)
	} else {
		pred = frameworks.NewSimPredictor(m, frameworks.Profile{Name: "direct"}, *dim, *seed)
	}

	bound, stop, err := clipper.ServeContainer(pred, *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	defer stop()
	log.Printf("model container %q serving on %s", m.Name(), bound)
	fmt.Printf("connect from a Clipper node with clipper.DialContainer(%q, ...)\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
}

func trainModel(kind string, ds *dataset.Dataset) (models.Model, error) {
	switch kind {
	case "linear-svm":
		return models.TrainLinearSVM(kind, ds, models.DefaultLinearConfig()), nil
	case "log-regression":
		return models.TrainLogisticRegression(kind, ds, models.DefaultLinearConfig()), nil
	case "random-forest":
		return models.TrainRandomForest(kind, ds, models.DefaultTreeConfig()), nil
	case "kernel-svm":
		return models.TrainKernelMachine(kind, ds, models.DefaultKernelConfig()), nil
	case "knn":
		return models.TrainKNN(kind, ds, 5), nil
	case "naive-bayes":
		return models.TrainNaiveBayes(kind, ds), nil
	case "mlp":
		return models.TrainMLP(kind, ds, models.DefaultMLPConfig()), nil
	case "gbdt":
		return models.TrainGBDT(kind, ds, models.DefaultGBDTConfig()), nil
	case "noop":
		return models.NewNoOp(kind, ds.NumClasses, 0), nil
	default:
		return nil, fmt.Errorf("unknown model family %q", kind)
	}
}

func lookupProfile(name string) (frameworks.Profile, bool) {
	switch name {
	case "sklearn-linear":
		return frameworks.SKLearnLinearSVM(), true
	case "sklearn-rf":
		return frameworks.SKLearnRandomForest(), true
	case "sklearn-kernel":
		return frameworks.SKLearnKernelSVM(), true
	case "sklearn-logreg":
		return frameworks.SKLearnLogisticRegression(), true
	case "pyspark":
		return frameworks.PySparkLinearSVM(), true
	case "noop":
		return frameworks.NoOpContainer(), true
	case "gpu":
		return frameworks.GPUDeepModel("gpu", 16), true
	default:
		return frameworks.Profile{}, false
	}
}
