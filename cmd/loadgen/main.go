// Command loadgen drives a Clipper REST endpoint with a prediction
// workload and reports throughput and latency, like the serving drivers in
// the paper's evaluation.
//
// Usage:
//
//	loadgen -target http://localhost:8080 -app demo -dim 64 -rate 500 -duration 10s
//	loadgen -target http://localhost:8080 -app demo -dim 64 -workers 32 -duration 10s
//
// With -rate the arrivals are open-loop Poisson; with -workers (and rate 0)
// the load is a closed loop of that many clients.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	"clipper/internal/frontend"
	"clipper/internal/metrics"
	"clipper/internal/workload"
)

func main() {
	var (
		target   = flag.String("target", "http://localhost:8080", "Clipper REST base URL")
		app      = flag.String("app", "demo", "application name")
		dim      = flag.Int("dim", 64, "feature dimensionality")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate (qps); 0 = closed loop")
		workers  = flag.Int("workers", 16, "closed-loop worker count")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		feedback = flag.Float64("feedback", 0, "fraction of queries followed by feedback")
		seed     = flag.Int64("seed", 1, "input generation seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	pool := make([][]float64, 256)
	for i := range pool {
		x := make([]float64, *dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		pool[i] = x
	}

	client := &http.Client{Timeout: 10 * time.Second}
	lat := metrics.NewHistogram()
	errors := &metrics.Counter{}
	meter := metrics.NewMeter()

	issue := func(workerSeed int) {
		x := pool[rand.Intn(len(pool))]
		start := time.Now()
		label, err := postPredict(client, *target, *app, x)
		if err != nil {
			errors.Inc()
			return
		}
		lat.ObserveDuration(time.Since(start))
		meter.Mark(1)
		if *feedback > 0 && rand.Float64() < *feedback {
			postFeedback(client, *target, *app, x, label)
		}
		_ = workerSeed
	}

	log.Printf("driving %s app=%q for %v", *target, *app, *duration)
	start := time.Now()
	if *rate > 0 {
		workload.RunOpenLoop(context.Background(), *rate, *duration, *seed, func() { issue(0) })
	} else {
		ctx, cancel := context.WithTimeout(context.Background(), *duration)
		defer cancel()
		workload.RunClosedLoop(ctx, *workers, 0, issue)
	}
	elapsed := time.Since(start)

	snap := lat.Snapshot()
	fmt.Printf("completed=%d errors=%d throughput=%.1f qps\n",
		snap.Count, errors.Value(), float64(snap.Count)/elapsed.Seconds())
	fmt.Printf("latency mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		snap.Mean*1e3, snap.P50*1e3, snap.P95*1e3, snap.P99*1e3, snap.Max*1e3)
}

func postPredict(client *http.Client, base, app string, x []float64) (int, error) {
	body, err := json.Marshal(frontend.PredictRequest{App: app, Input: x})
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/api/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var pr frontend.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, err
	}
	return pr.Label, nil
}

func postFeedback(client *http.Client, base, app string, x []float64, label int) {
	body, err := json.Marshal(frontend.FeedbackRequest{App: app, Input: x, Label: label})
	if err != nil {
		return
	}
	resp, err := client.Post(base+"/api/v1/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	resp.Body.Close()
}
