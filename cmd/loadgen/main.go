// Command loadgen drives a Clipper node with a prediction workload over
// any protocol adapter and reports throughput and latency, like the
// serving drivers in the paper's evaluation.
//
// Usage:
//
//	loadgen -target http://localhost:8080 -app demo -rate 500 -duration 10s
//	loadgen -proto binrpc -target localhost:7000 -rate 500 -process diurnal
//	loadgen -proto stream -target localhost:7001 -rate 2000 -process flash
//	loadgen -target http://localhost:8080 -workers 32 -duration 10s
//
// With -rate the arrivals are open-loop (Poisson by default; -process
// selects diurnal or flash-crowd modulation) over a Zipf-popular user
// population, so offered load is fixed regardless of server speed and
// hot users re-query their own inputs (cache locality). With -workers
// (and rate 0) the load is a closed loop of that many clients.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"clipper/internal/adapter/binrpc"
	"clipper/internal/adapter/stream"
	"clipper/internal/gateway"
	"clipper/internal/workload"
)

func main() {
	var (
		target   = flag.String("target", "http://localhost:8080", "Clipper endpoint: base URL for http, host:port for binrpc/stream")
		proto    = flag.String("proto", "http", "protocol adapter: http, binrpc, or stream")
		app      = flag.String("app", "demo", "application name")
		dim      = flag.Int("dim", 64, "feature dimensionality")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate (qps); 0 = closed loop")
		process  = flag.String("process", "poisson", "open-loop arrival process: poisson, diurnal, or flash")
		users    = flag.Int("users", 1000, "user population (Zipf-popular, one input vector each)")
		zipfS    = flag.Float64("zipf", 1.2, "user popularity skew exponent")
		workers  = flag.Int("workers", 16, "closed-loop worker count")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		feedback = flag.Float64("feedback", 0, "fraction of queries followed by feedback")
		seed     = flag.Int64("seed", 1, "input generation seed")
	)
	flag.Parse()

	// One deterministic input vector per user: a user's repeat queries are
	// byte-identical, so Zipf-popular users exercise the prediction cache
	// the way real per-user content queries do.
	rng := rand.New(rand.NewSource(*seed))
	inputs := make([][]float64, *users)
	for i := range inputs {
		x := make([]float64, *dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		inputs[i] = x
	}

	c, err := dialCaller(*proto, *target)
	if err != nil {
		log.Fatalf("dialing %s target %s: %v", *proto, *target, err)
	}
	defer c.close()

	call := func(user int) error {
		x := inputs[user%len(inputs)]
		label, err := c.predict(*app, x)
		if err != nil {
			return err
		}
		if *feedback > 0 && rand.Float64() < *feedback {
			c.feedback(*app, x, label)
		}
		return nil
	}

	log.Printf("driving %s (%s) app=%q process=%s for %v", *target, *proto, *app, *process, *duration)
	if *rate > 0 {
		res := workload.MeasureOpenLoop(context.Background(), workload.OpenLoopConfig{
			Process:  *process,
			Rate:     *rate,
			Duration: *duration,
			Seed:     *seed,
			Users:    *users,
			ZipfS:    *zipfS,
		}, call)
		fmt.Printf("issued=%d completed=%d errors=%d offered=%.1fqps served=%.1fqps\n",
			res.Issued, res.Completed, res.Errors, res.OfferedQPS, res.QPS)
		fmt.Printf("latency p50=%.2fms p95=%.2fms p99=%.2fms p999=%.2fms\n",
			ms(res.P50), ms(res.P95), ms(res.P99), ms(res.P999))
		return
	}

	// Closed loop: workers issue back-to-back, users drawn Zipf per query.
	userZipf := workload.NewZipf(*users, *zipfS, *seed)
	var completed, errors atomic.Int64
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	workload.RunClosedLoop(ctx, *workers, 0, func(int) {
		if err := call(userZipf.Rank()); err != nil {
			errors.Add(1)
		} else {
			completed.Add(1)
		}
	})
	elapsed := time.Since(start)
	fmt.Printf("completed=%d errors=%d throughput=%.1f qps\n",
		completed.Load(), errors.Load(), float64(completed.Load())/elapsed.Seconds())
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// caller abstracts one protocol adapter's predict/feedback calls.
type caller interface {
	predict(app string, x []float64) (int, error)
	feedback(app string, x []float64, label int)
	close()
}

func dialCaller(proto, target string) (caller, error) {
	switch proto {
	case "http":
		return &httpCaller{client: &http.Client{Timeout: 10 * time.Second}, base: target}, nil
	case "binrpc":
		c, err := binrpc.Dial(target, 5*time.Second)
		if err != nil {
			return nil, err
		}
		return &binrpcCaller{c: c}, nil
	case "stream":
		c, err := stream.Dial(target, 5*time.Second)
		if err != nil {
			return nil, err
		}
		return &streamCaller{c: c}, nil
	default:
		return nil, fmt.Errorf("unknown proto %q (want http, binrpc, or stream)", proto)
	}
}

type httpCaller struct {
	client *http.Client
	base   string
}

func (h *httpCaller) predict(app string, x []float64) (int, error) {
	body, err := json.Marshal(gateway.PredictRequest{App: app, Input: x})
	if err != nil {
		return 0, err
	}
	resp, err := h.client.Post(h.base+"/api/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var pr struct {
		Label int `json:"label"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, err
	}
	return pr.Label, nil
}

func (h *httpCaller) feedback(app string, x []float64, label int) {
	body, err := json.Marshal(gateway.FeedbackRequest{App: app, Input: x, Label: label})
	if err != nil {
		return
	}
	resp, err := h.client.Post(h.base+"/api/v1/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	resp.Body.Close()
}

func (h *httpCaller) close() {}

type binrpcCaller struct{ c *binrpc.Client }

func (b *binrpcCaller) predict(app string, x []float64) (int, error) {
	res, err := b.c.Predict(context.Background(), app, "", x)
	return res.Label, err
}

func (b *binrpcCaller) feedback(app string, x []float64, label int) {
	b.c.Feedback(context.Background(), app, "", label, x)
}

func (b *binrpcCaller) close() { b.c.Close() }

type streamCaller struct{ c *stream.Conn }

func (s *streamCaller) predict(app string, x []float64) (int, error) {
	res, err := s.c.Predict(context.Background(), app, "", x)
	return res.Label, err
}

func (s *streamCaller) feedback(app string, x []float64, label int) {
	s.c.Feedback(context.Background(), app, "", label, x)
}

func (s *streamCaller) close() { s.c.Close() }
